"""On-disk verifying-key store (``zkml-vk-registry/v1``).

Layout under the registry root::

    index.json              {"schema": ..., "entries": {vk_hash_hex: {...}}}
    vk/<vk_hash_hex>.pkl    pickled VerifyingKey, one file per key

The index entry records the lookup tuple (model, scheme, config digest)
plus an integrity checksum — blake2b-16 over the *stored file bytes*,
not over a fresh pickle: the vk memoizes derived data lazily (its own
digest, NTT twiddles), so re-pickling the live object is not stable,
but the bytes we wrote are.  Both index and artifacts are written
tmp-then-rename with bounded retries (the checkpoint store's idiom,
sharing its ``disk_write`` fault-injection site).

Reads re-verify: a missing or checksum-failing artifact is **evicted**
from the index, counted as
``resilience_recovered_total{reason="vk_registry_evict"}``, and
surfaced as a typed :class:`~repro.resilience.errors.RegistryError` so
the caller knows to re-publish — never served corrupt.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.resilience import events, faults
from repro.resilience.errors import (
    RegistryError,
    UnknownVerifyingKeyError,
)

__all__ = ["INDEX_SCHEMA", "RegistryEntry", "VKRegistry"]

INDEX_SCHEMA = "zkml-vk-registry/v1"

_CHECKSUM_BYTES = 16


def _artifact_checksum(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=_CHECKSUM_BYTES).hexdigest()


@dataclass
class RegistryEntry:
    """One published verifying key's index record."""

    vk_hash: str
    model: str
    scheme: str
    config_digest: str
    checksum: str
    file: str
    size_bytes: int

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


class VKRegistry:
    """Content-addressed, checksummed verifying-key store."""

    def __init__(self, root: str, write_attempts: int = 3,
                 backoff_seconds: float = 0.05):
        self.root = root
        self.write_attempts = write_attempts
        self.backoff_seconds = backoff_seconds
        os.makedirs(os.path.join(root, "vk"), exist_ok=True)

    # -- index ---------------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def _load_index(self) -> Dict[str, Dict]:
        if not os.path.exists(self.index_path):
            return {}
        try:
            with open(self.index_path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError("registry index is unreadable",
                                path=self.index_path,
                                error=type(exc).__name__) from exc
        if doc.get("schema") != INDEX_SCHEMA:
            raise RegistryError(
                "registry index has schema %r (expected %r)"
                % (doc.get("schema"), INDEX_SCHEMA), path=self.index_path)
        return doc.get("entries", {})

    def _store_index(self, entries: Dict[str, Dict]) -> None:
        doc = {"schema": INDEX_SCHEMA, "entries": entries}
        self._atomic_write(self.index_path,
                           json.dumps(doc, indent=1, sort_keys=True).encode(),
                           what="index")

    def _atomic_write(self, path: str, data: bytes, what: str) -> None:
        tmp = path + ".tmp"
        last: Optional[BaseException] = None
        for attempt in range(1, self.write_attempts + 1):
            try:
                faults.maybe_inject("disk_write")
                with open(tmp, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
                return
            except (OSError, faults.InjectedFault) as exc:
                last = exc
                if attempt < self.write_attempts:
                    events.retried("registry_write", attempt, what=what,
                                   error=type(exc).__name__)
                    time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
        raise RegistryError(
            "could not write registry %s after %d attempts"
            % (what, self.write_attempts), path=path) from last

    # -- publish -------------------------------------------------------------

    def publish(self, vk, model: str,
                config_digest: bytes) -> Tuple[RegistryEntry, bool]:
        """Store ``vk`` under its binding digest; idempotent.

        Returns ``(entry, created)``.  A pre-existing intact entry is a
        no-op (``created=False``); a pre-existing entry whose artifact is
        missing or checksum-failing is **rebuilt** from the key in hand,
        counted as a recovery.
        """
        vk_hash = vk.digest().hex()
        entries = self._load_index()
        existing = entries.get(vk_hash)
        if existing is not None:
            intact, _ = self._artifact_intact(existing)
            if intact:
                return RegistryEntry(**existing), False
            events.recovered("vk_registry_rebuild", vk_hash=vk_hash[:16],
                             model=model)
        data = pickle.dumps(vk)
        rel = os.path.join("vk", "%s.pkl" % vk_hash)
        self._atomic_write(os.path.join(self.root, rel), data,
                           what="vk artifact")
        entry = RegistryEntry(
            vk_hash=vk_hash,
            model=model,
            scheme=vk.scheme_name,
            config_digest=config_digest.hex(),
            checksum=_artifact_checksum(data),
            file=rel,
            size_bytes=len(data),
        )
        entries[vk_hash] = entry.as_dict()
        self._store_index(entries)
        return entry, True

    # -- read ----------------------------------------------------------------

    def _artifact_intact(self, record: Dict) -> Tuple[bool, str]:
        """(intact, cause) for one index record's on-disk artifact."""
        path = os.path.join(self.root, record["file"])
        try:
            faults.maybe_inject("registry_read")
            with open(path, "rb") as fh:
                data = fh.read()
        except faults.InjectedFault:
            return False, "injected_fault"
        except OSError:
            return False, "missing_artifact"
        if _artifact_checksum(data) != record["checksum"]:
            return False, "checksum_mismatch"
        return True, ""

    def entry(self, vk_hash: str) -> RegistryEntry:
        """The index record for ``vk_hash`` (no artifact read)."""
        entries = self._load_index()
        record = entries.get(vk_hash)
        if record is None:
            raise UnknownVerifyingKeyError(
                "verifying key %s is not in the registry" % vk_hash[:16],
                vk_hash=vk_hash, registry=self.root)
        return RegistryEntry(**record)

    def get(self, vk_hash: str):
        """Load and integrity-check the verifying key for ``vk_hash``.

        Unknown hash → :class:`UnknownVerifyingKeyError`.  A corrupt or
        missing artifact is evicted from the index (counted as
        ``vk_registry_evict``) and raises :class:`RegistryError` — the
        caller re-publishes to rebuild.
        """
        entries = self._load_index()
        record = entries.get(vk_hash)
        if record is None:
            raise UnknownVerifyingKeyError(
                "verifying key %s is not in the registry" % vk_hash[:16],
                vk_hash=vk_hash, registry=self.root)
        intact, cause = self._artifact_intact(record)
        if intact:
            with open(os.path.join(self.root, record["file"]), "rb") as fh:
                data = fh.read()
            try:
                vk = pickle.loads(data)
            except Exception:  # noqa: BLE001 — any unpickle failure is corruption
                intact, cause = False, "unpicklable"
            else:
                try:
                    stored_hash = vk.digest().hex()
                except Exception:  # noqa: BLE001 — a valid pickle of the wrong object
                    intact, cause = False, "not_a_verifying_key"
                else:
                    if stored_hash != vk_hash:
                        intact, cause = False, "digest_mismatch"
        if not intact:
            self._evict(entries, vk_hash, cause)
            raise RegistryError(
                "verifying key %s failed integrity (%s); entry evicted — "
                "re-publish to rebuild" % (vk_hash[:16], cause),
                vk_hash=vk_hash, cause=cause)
        return vk

    def _evict(self, entries: Dict[str, Dict], vk_hash: str,
               cause: str) -> None:
        record = entries.pop(vk_hash, None)
        if record is not None:
            path = os.path.join(self.root, record["file"])
            try:
                os.unlink(path)
            except OSError:
                pass
            self._store_index(entries)
        events.recovered("vk_registry_evict", vk_hash=vk_hash[:16],
                         cause=cause)

    def list_entries(self) -> List[RegistryEntry]:
        """All index records, sorted by (model, scheme, vk hash)."""
        entries = [RegistryEntry(**record)
                   for record in self._load_index().values()]
        entries.sort(key=lambda e: (e.model, e.scheme, e.vk_hash))
        return entries

    def find(self, model: str, scheme: str,
             config_digest: str) -> Optional[RegistryEntry]:
        """The entry published for this (model, scheme, config) tuple."""
        for entry in self.list_entries():
            if (entry.model == model and entry.scheme == scheme
                    and entry.config_digest == config_digest):
                return entry
        return None

    # -- check ---------------------------------------------------------------

    def check(self, repair: bool = False) -> Dict[str, object]:
        """Verify every artifact against its recorded checksum.

        Returns a report dict; with ``repair=True`` corrupt/missing
        entries are evicted (they cannot be rebuilt without the key —
        the publisher re-runs ``zkml registry publish``).
        """
        entries = self._load_index()
        ok: List[str] = []
        bad: List[Dict[str, str]] = []
        for vk_hash, record in sorted(entries.items()):
            intact, cause = self._artifact_intact(record)
            if intact:
                ok.append(vk_hash)
            else:
                bad.append({"vk_hash": vk_hash, "model": record["model"],
                            "cause": cause})
        if repair and bad:
            for item in bad:
                self._evict(entries, item["vk_hash"], item["cause"])
        return {
            "schema": "zkml-registry-check/v1",
            "root": self.root,
            "checked": len(ok) + len(bad),
            "intact": len(ok),
            "corrupt": bad,
            "repaired": bool(repair and bad),
            "ok": not bad,
        }
