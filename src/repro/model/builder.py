"""Fluent graph builder with deterministic weight initialization.

``materialize=False`` records parameter *shapes* only — paper-scale
models (81M parameters) stay cheap to construct because the optimizer
never needs the weight values, only the graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.spec import LayerSpec, ModelSpec


class GraphBuilder:
    """Builds a :class:`ModelSpec` layer by layer."""

    def __init__(self, name: str, materialize: bool = True, seed: int = 0):
        self.name = name
        self.materialize = materialize
        self._rng = np.random.default_rng(
            seed ^ int.from_bytes(name.encode()[:8].ljust(8, b"\0"), "little")
        )
        self._inputs: Dict[str, Tuple[int, ...]] = {}
        self._layers: List[LayerSpec] = []
        self._counter = 0

    # -- plumbing -----------------------------------------------------------------

    def _fresh(self, kind: str) -> str:
        self._counter += 1
        return "%s_%d" % (kind, self._counter)

    def _param(self, shape: Tuple[int, ...], scale: float = 0.5):
        if not self.materialize:
            return tuple(shape)
        return self._rng.uniform(-scale, scale, shape)

    def add_layer(self, kind: str, inputs: Sequence[str],
                  attrs: Optional[dict] = None,
                  params: Optional[dict] = None, name: str = "") -> str:
        name = name or self._fresh(kind)
        self._layers.append(
            LayerSpec(name=name, kind=kind, inputs=list(inputs),
                      attrs=dict(attrs or {}), params=dict(params or {}))
        )
        return name

    def input(self, name: str, shape: Sequence[int]) -> str:
        self._inputs[name] = tuple(shape)
        return name

    def build(self, outputs: Sequence[str]) -> ModelSpec:
        spec = ModelSpec(name=self.name, inputs=dict(self._inputs),
                         layers=list(self._layers), outputs=list(outputs))
        spec.validate()
        return spec

    # -- layer shorthands ------------------------------------------------------------

    def fully_connected(self, x: str, in_dim: int, units: int, name: str = "") -> str:
        fan = max(in_dim, 1)
        return self.add_layer(
            "fully_connected", [x], {"units": units},
            {"weight": self._param((in_dim, units), scale=1.0 / np.sqrt(fan)),
             "bias": self._param((units,), scale=0.05)},
            name,
        )

    def conv2d(self, x: str, cin: int, filters: int, kernel=(3, 3), stride=1,
               padding="same", name: str = "") -> str:
        fan = kernel[0] * kernel[1] * cin
        return self.add_layer(
            "conv2d", [x],
            {"kernel": tuple(kernel), "filters": filters, "stride": stride,
             "padding": padding},
            {"weight": self._param((kernel[0], kernel[1], cin, filters),
                                   scale=1.0 / np.sqrt(fan)),
             "bias": self._param((filters,), scale=0.05)},
            name,
        )

    def depthwise_conv2d(self, x: str, cin: int, kernel=(3, 3), multiplier=1,
                         stride=1, padding="same", name: str = "") -> str:
        fan = kernel[0] * kernel[1]
        return self.add_layer(
            "depthwise_conv2d", [x],
            {"kernel": tuple(kernel), "multiplier": multiplier,
             "stride": stride, "padding": padding},
            {"weight": self._param((kernel[0], kernel[1], cin, multiplier),
                                   scale=1.0 / np.sqrt(fan)),
             "bias": self._param((cin * multiplier,), scale=0.05)},
            name,
        )

    def activation(self, x: str, fn: str, name: str = "") -> str:
        return self.add_layer(fn, [x], name=name)

    def softmax(self, x: str, name: str = "") -> str:
        return self.add_layer("softmax", [x], name=name)

    def add(self, a: str, b: str, name: str = "") -> str:
        return self.add_layer("add", [a, b], name=name)

    def mul(self, a: str, b: str, name: str = "") -> str:
        return self.add_layer("mul", [a, b], name=name)

    def batch_matmul(self, a: str, b: str, name: str = "") -> str:
        return self.add_layer("batch_matmul", [a, b], name=name)

    def max_pool(self, x: str, pool=2, stride=None, name: str = "") -> str:
        return self.add_layer(
            "max_pool2d", [x], {"pool": pool, "stride": stride or pool}, name=name
        )

    def avg_pool(self, x: str, pool=2, stride=None, name: str = "") -> str:
        return self.add_layer(
            "avg_pool2d", [x], {"pool": pool, "stride": stride or pool}, name=name
        )

    def global_avg_pool(self, x: str, name: str = "") -> str:
        return self.add_layer("global_avg_pool", [x], name=name)

    def flatten(self, x: str, name: str = "") -> str:
        return self.add_layer("flatten", [x], name=name)

    def reshape(self, x: str, shape, name: str = "") -> str:
        return self.add_layer("reshape", [x], {"shape": tuple(shape)}, name=name)

    def transpose(self, x: str, axes=None, name: str = "") -> str:
        return self.add_layer("transpose", [x], {"axes": axes}, name=name)

    def concat(self, xs: Sequence[str], axis=0, name: str = "") -> str:
        return self.add_layer("concat", list(xs), {"axis": axis}, name=name)

    def pad(self, x: str, pad_width, name: str = "") -> str:
        return self.add_layer("pad", [x], {"pad_width": tuple(tuple(p) for p in pad_width)}, name=name)

    def batch_norm(self, x: str, channels: int, name: str = "") -> str:
        return self.add_layer(
            "batch_norm", [x], {"eps": 1e-3},
            {"gamma": self._param((channels,), 1.0) if not self.materialize
             else np.abs(self._rng.uniform(0.5, 1.5, (channels,))),
             "beta": self._param((channels,), 0.1),
             "mean": self._param((channels,), 0.1),
             "variance": self._param((channels,), 1.0) if not self.materialize
             else np.abs(self._rng.uniform(0.5, 1.5, (channels,)))},
            name,
        )

    def layer_norm(self, x: str, dim: int, name: str = "") -> str:
        return self.add_layer(
            "layer_norm", [x], {"eps": 1e-2},
            {"gamma": np.ones(dim) if self.materialize else (dim,),
             "beta": np.zeros(dim) if self.materialize else (dim,)},
            name,
        )

    def gather(self, indices, table_shape: Tuple[int, int], name: str = "") -> str:
        return self.add_layer(
            "gather", [],
            {"indices": list(indices), "table_shape": tuple(table_shape)},
            {"table": self._param(table_shape, scale=0.5)},
            name,
        )

    # -- composite blocks -------------------------------------------------------------

    def attention_block(self, x: str, seq: int, dim: int, heads: int,
                        name: str = "") -> str:
        """Multi-head self-attention from primitive layers (paper Table 3:
        BatchMatMul + Softmax are what GPT needs)."""
        prefix = name or self._fresh("attn")
        head_dim = dim // heads
        q = self.fully_connected(x, dim, dim, name=prefix + "_q")
        k = self.fully_connected(x, dim, dim, name=prefix + "_k")
        v = self.fully_connected(x, dim, dim, name=prefix + "_v")
        # (seq, dim) -> (heads, seq, head_dim)
        qh = self.transpose(self.reshape(q, (seq, heads, head_dim)), (1, 0, 2))
        kh = self.transpose(self.reshape(k, (seq, heads, head_dim)), (1, 2, 0))
        vh = self.transpose(self.reshape(v, (seq, heads, head_dim)), (1, 0, 2))
        scores = self.batch_matmul(qh, kh, name=prefix + "_scores")
        probs = self.softmax(scores, name=prefix + "_probs")
        ctx = self.batch_matmul(probs, vh, name=prefix + "_ctx")
        merged = self.reshape(self.transpose(ctx, (1, 0, 2)), (seq, dim))
        return self.fully_connected(merged, dim, dim, name=prefix + "_proj")
