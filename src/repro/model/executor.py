"""Reference executors: float semantics and exact fixed-point semantics.

``run_fixed`` is the bit-exact model of what the circuit computes; the
compiler's synthesized circuit must (and is tested to) agree cell-for-cell.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.model.spec import ModelSpec
from repro.resilience.errors import SpecError
from repro.quantize import FixedPoint


def run_float(spec: ModelSpec, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Execute the model in float64; returns all requested outputs."""
    if not spec.materialized:
        raise SpecError("model %r has shape-only parameters" % spec.name,
                        model=spec.name)
    values: Dict[str, np.ndarray] = {
        k: np.asarray(v, dtype=np.float64) for k, v in inputs.items()
    }
    for layer_spec in spec.layers:
        layer = layer_spec.layer()
        args = [values[i] for i in layer_spec.inputs]
        params = {k: np.asarray(v, dtype=np.float64)
                  for k, v in layer_spec.params.items()}
        values[layer_spec.name] = np.asarray(layer.forward_float(args, params))
    return {name: values[name] for name in spec.outputs}


def run_fixed(
    spec: ModelSpec, inputs: Dict[str, np.ndarray], scale_bits: int
) -> Dict[str, np.ndarray]:
    """Execute the model in exact fixed-point (object-int arrays)."""
    if not spec.materialized:
        raise SpecError("model %r has shape-only parameters" % spec.name,
                        model=spec.name)
    fp = FixedPoint(scale_bits)
    values: Dict[str, np.ndarray] = {
        k: fp.encode_array(np.asarray(v)) for k, v in inputs.items()
    }
    for layer_spec in spec.layers:
        layer = layer_spec.layer()
        args = [values[i] for i in layer_spec.inputs]
        params = layer.quantize_params(
            {k: np.asarray(v) for k, v in layer_spec.params.items()}, fp
        )
        values[layer_spec.name] = np.asarray(
            layer.forward_fixed(args, params, fp), dtype=object
        )
    return {name: values[name] for name in spec.outputs}


def fixed_outputs_decoded(
    spec: ModelSpec, inputs: Dict[str, np.ndarray], scale_bits: int
) -> Dict[str, np.ndarray]:
    """Fixed-point execution decoded back to floats (for accuracy evals)."""
    fp = FixedPoint(scale_bits)
    return {
        k: fp.decode_array(v)
        for k, v in run_fixed(spec, inputs, scale_bits).items()
    }
