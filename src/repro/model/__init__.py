"""Model IR: spec, builder, transpiler, reference executors, and the zoo."""

from repro.model.spec import LayerSpec, ModelSpec
from repro.model.builder import GraphBuilder
from repro.model.executor import fixed_outputs_decoded, run_fixed, run_float
from repro.model.transpiler import (
    OPCODE_TO_KIND,
    TranspileError,
    export,
    transpile,
)
from repro.model.zoo import PAPER_TABLE5, get_model, model_names

__all__ = [
    "LayerSpec",
    "ModelSpec",
    "GraphBuilder",
    "run_float",
    "run_fixed",
    "fixed_outputs_decoded",
    "transpile",
    "export",
    "OPCODE_TO_KIND",
    "TranspileError",
    "get_model",
    "model_names",
    "PAPER_TABLE5",
]
