"""Model specification: a fixed-function layer graph (paper §4.1).

A :class:`ModelSpec` is the compiler's input: named graph inputs, a
topologically ordered list of :class:`LayerSpec`, and the output names.
Parameters are either materialized numpy arrays (runnable models) or bare
shape tuples (shape-only specs for the paper-scale models, which the
optimizer can cost without ever allocating 81M weights).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.layers import Layer, layer_registry
from repro.resilience.errors import SpecError, UnknownNameError

ParamValue = Union[np.ndarray, Tuple[int, ...]]


@dataclass
class LayerSpec:
    """One node of the graph."""

    name: str
    kind: str
    inputs: List[str]
    attrs: Dict[str, object] = field(default_factory=dict)
    params: Dict[str, ParamValue] = field(default_factory=dict)

    def layer(self) -> Layer:
        try:
            cls = layer_registry[self.kind]
        except KeyError:
            raise UnknownNameError(
                "unsupported layer kind %r (supported: %d kinds)"
                % (self.kind, len(layer_registry)),
                layer=self.name, kind=self.kind,
            ) from None
        return cls(name=self.name, **self.attrs)

    def param_shapes(self) -> Dict[str, Tuple[int, ...]]:
        return {
            k: tuple(v) if isinstance(v, tuple) else tuple(np.shape(v))
            for k, v in self.params.items()
        }

    @property
    def materialized(self) -> bool:
        return all(isinstance(v, np.ndarray) for v in self.params.values())


@dataclass
class ModelSpec:
    """A whole model: inputs, layers in topological order, outputs."""

    name: str
    inputs: Dict[str, Tuple[int, ...]]
    layers: List[LayerSpec]
    outputs: List[str]

    def validate(self) -> None:
        """Check that the graph is well-formed and topologically ordered."""
        known = set(self.inputs)
        for spec in self.layers:
            for inp in spec.inputs:
                if inp not in known:
                    raise SpecError(
                        "layer %r reads %r before it is defined" % (spec.name, inp),
                        layer=spec.name, model=self.name,
                    )
            if spec.name in known:
                raise SpecError("duplicate node name %r" % spec.name,
                                layer=spec.name, model=self.name)
            spec.layer()  # raises on unknown kind / bad attrs
            known.add(spec.name)
        for out in self.outputs:
            if out not in known:
                raise SpecError("output %r is not produced" % out,
                                model=self.name, output=out)

    def shapes(self) -> Dict[str, Tuple[int, ...]]:
        """Shape of every node, propagated through the graph."""
        shapes: Dict[str, Tuple[int, ...]] = dict(self.inputs)
        for spec in self.layers:
            layer = spec.layer()
            shapes[spec.name] = tuple(
                layer.output_shape([shapes[i] for i in spec.inputs])
            )
        return shapes

    def layer_input_shapes(self) -> Dict[str, List[Tuple[int, ...]]]:
        shapes = self.shapes()
        return {
            spec.name: [shapes[i] for i in spec.inputs] for spec in self.layers
        }

    @property
    def materialized(self) -> bool:
        return all(spec.materialized for spec in self.layers)

    # -- statistics (paper Table 5) -------------------------------------------

    def param_count(self) -> int:
        return sum(
            int(np.prod(shape)) if shape else 1
            for spec in self.layers
            for shape in spec.param_shapes().values()
        )

    def flops(self) -> int:
        """Multiply-accumulate-style flop estimate per layer family."""
        total = 0
        shapes = self.shapes()
        for spec in self.layers:
            in_shapes = [shapes[i] for i in spec.inputs]
            out_shape = shapes[spec.name]
            out_n = int(np.prod(out_shape)) if out_shape else 1
            if spec.kind in ("fully_connected",):
                total += 2 * out_n * in_shapes[0][-1]
            elif spec.kind == "conv2d":
                kh, kw = spec.attrs["kernel"]
                cin = in_shapes[0][-1]
                total += 2 * out_n * kh * kw * cin
            elif spec.kind == "depthwise_conv2d":
                kh, kw = spec.attrs["kernel"]
                total += 2 * out_n * kh * kw
            elif spec.kind == "batch_matmul":
                total += 2 * out_n * in_shapes[0][-1]
            elif spec.kind in ("reshape", "transpose", "flatten", "squeeze",
                               "expand_dims", "concat", "slice", "pad",
                               "gather", "identity", "split"):
                continue
            else:
                total += out_n
        return total

    def summary(self) -> str:
        shapes = self.shapes()
        lines = ["%s: %d layers, %d params, %d flops"
                 % (self.name, len(self.layers), self.param_count(), self.flops())]
        for spec in self.layers:
            lines.append("  %-24s %-18s -> %r"
                         % (spec.name, spec.kind, shapes[spec.name]))
        return "\n".join(lines)
