"""Model zoo: the eight models of the paper's evaluation (Table 5).

Each model comes in two scales:

- ``paper`` — the full architecture, *shape-only* parameters (no weight
  arrays are allocated).  Used by the optimizer and the analytic cost
  model, which only need the graph.
- ``mini``  — a faithfully shaped but heavily scaled-down variant with
  materialized deterministic weights, small enough to actually prove
  with the pure-Python prover.

The paper's reported parameter/flop counts are kept in
:data:`PAPER_TABLE5` so benchmarks can print paper-vs-ours side by side.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.model.builder import GraphBuilder
from repro.model.spec import ModelSpec
from repro.resilience.errors import SpecError, UnknownNameError

#: Paper Table 5 (params, flops).
PAPER_TABLE5 = {
    "gpt2": (81_300_000, 188_900_000),
    "diffusion": (19_500_000, 22_900_000_000),
    "twitter": (48_100_000, 96_200_000),
    "dlrm": (764_300, 1_900_000),
    "mobilenet": (3_500_000, 601_800_000),
    "resnet18": (280_900, 81_900_000),
    "vgg16": (15_200_000, 627_900_000),
    "mnist": (8_100, 444_900),
}


def _mlp(gb: GraphBuilder, x: str, dims: List[int], activation="relu",
         final_activation=None, prefix="mlp") -> str:
    for i in range(len(dims) - 1):
        x = gb.fully_connected(x, dims[i], dims[i + 1],
                               name="%s_fc%d" % (prefix, i))
        last = i == len(dims) - 2
        act = final_activation if last else activation
        if act:
            x = gb.activation(x, act, name="%s_act%d" % (prefix, i))
    return x


# --------------------------------------------------------------------------- MNIST


def mnist(mini: bool = False) -> ModelSpec:
    """The accuracy-optimized minimal MNIST CNN [1] (~8.1K params)."""
    gb = GraphBuilder("mnist-mini" if mini else "mnist", materialize=mini)
    if mini:
        x = gb.input("image", (6, 6, 1))
        x = gb.conv2d(x, 1, 4, kernel=(3, 3), stride=2, padding="valid")
        x = gb.activation(x, "relu")
        x = gb.flatten(x)
        x = gb.fully_connected(x, 16, 10)
        x = gb.softmax(x)
        return gb.build([x])
    x = gb.input("image", (28, 28, 1))
    x = gb.conv2d(x, 1, 4, kernel=(3, 3), padding="same")
    x = gb.activation(x, "relu")
    x = gb.max_pool(x, 2)
    x = gb.conv2d(x, 4, 8, kernel=(3, 3), padding="same")
    x = gb.activation(x, "relu")
    x = gb.max_pool(x, 2)
    x = gb.conv2d(x, 8, 16, kernel=(3, 3), padding="same")
    x = gb.activation(x, "relu")
    x = gb.max_pool(x, 2)
    x = gb.conv2d(x, 16, 24, kernel=(3, 3), padding="same")
    x = gb.activation(x, "relu")
    x = gb.global_avg_pool(x)
    x = gb.fully_connected(x, 24, 64)
    x = gb.activation(x, "relu")
    x = gb.fully_connected(x, 64, 10)
    x = gb.softmax(x)
    return gb.build([x])


# ------------------------------------------------------------------------- ResNet-18


def _basic_block(gb: GraphBuilder, x: str, cin: int, cout: int, stride: int,
                 prefix: str) -> str:
    y = gb.conv2d(x, cin, cout, kernel=(3, 3), stride=stride,
                  name=prefix + "_conv1")
    y = gb.batch_norm(y, cout, name=prefix + "_bn1")
    y = gb.activation(y, "relu", name=prefix + "_relu1")
    y = gb.conv2d(y, cout, cout, kernel=(3, 3), name=prefix + "_conv2")
    y = gb.batch_norm(y, cout, name=prefix + "_bn2")
    if stride != 1 or cin != cout:
        x = gb.conv2d(x, cin, cout, kernel=(1, 1), stride=stride,
                      name=prefix + "_down")
        x = gb.batch_norm(x, cout, name=prefix + "_bn_down")
    y = gb.add(x, y, name=prefix + "_add")
    return gb.activation(y, "relu", name=prefix + "_relu2")


def resnet18(mini: bool = False) -> ModelSpec:
    """ResNet-18 on CIFAR-10 (~281K params at paper scale)."""
    gb = GraphBuilder("resnet18-mini" if mini else "resnet18",
                      materialize=mini)
    if mini:
        x = gb.input("image", (6, 6, 2))
        x = gb.conv2d(x, 2, 4, kernel=(3, 3))
        x = gb.activation(x, "relu")
        x = _basic_block(gb, x, 4, 4, 1, "block1")
        x = gb.global_avg_pool(x)
        x = gb.fully_connected(x, 4, 10)
        return gb.build([x])
    x = gb.input("image", (32, 32, 3))
    x = gb.conv2d(x, 3, 16, kernel=(3, 3))
    x = gb.batch_norm(x, 16)
    x = gb.activation(x, "relu")
    widths = [(16, 16, 1), (16, 16, 1), (16, 32, 2), (32, 32, 1),
              (32, 32, 1), (32, 64, 2), (64, 64, 1), (64, 64, 1)]
    for i, (cin, cout, stride) in enumerate(widths):
        x = _basic_block(gb, x, cin, cout, stride, "block%d" % i)
    x = gb.global_avg_pool(x)
    x = gb.fully_connected(x, 64, 10)
    x = gb.softmax(x)
    return gb.build([x])


# --------------------------------------------------------------------------- VGG-16


def vgg16(mini: bool = False) -> ModelSpec:
    """VGG-16 on CIFAR-10 (~15.2M params at paper scale)."""
    gb = GraphBuilder("vgg16-mini" if mini else "vgg16", materialize=mini)
    if mini:
        x = gb.input("image", (8, 8, 1))
        x = gb.conv2d(x, 1, 4, kernel=(3, 3))
        x = gb.activation(x, "relu")
        x = gb.max_pool(x, 2)
        x = gb.conv2d(x, 4, 8, kernel=(3, 3))
        x = gb.activation(x, "relu")
        x = gb.max_pool(x, 2)
        x = gb.flatten(x)
        x = gb.fully_connected(x, 2 * 2 * 8, 10)
        return gb.build([x])
    x = gb.input("image", (32, 32, 3))
    cfg = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
           512, 512, 512, "M", 512, 512, 512, "M"]
    cin = 3
    for i, c in enumerate(cfg):
        if c == "M":
            x = gb.max_pool(x, 2, name="pool%d" % i)
        else:
            x = gb.conv2d(x, cin, c, kernel=(3, 3), name="conv%d" % i)
            x = gb.batch_norm(x, c, name="bn%d" % i)
            x = gb.activation(x, "relu", name="relu%d" % i)
            cin = c
    x = gb.flatten(x)
    x = gb.fully_connected(x, 512, 512)
    x = gb.activation(x, "relu")
    x = gb.fully_connected(x, 512, 10)
    x = gb.softmax(x)
    return gb.build([x])


# ------------------------------------------------------------------------ MobileNetV2


def _inverted_residual(gb: GraphBuilder, x: str, cin: int, cout: int,
                       stride: int, expand: int, prefix: str) -> str:
    mid = cin * expand
    y = x
    if expand != 1:
        y = gb.conv2d(y, cin, mid, kernel=(1, 1), name=prefix + "_expand")
        y = gb.batch_norm(y, mid, name=prefix + "_bn0")
        y = gb.activation(y, "relu6", name=prefix + "_relu0")
    y = gb.depthwise_conv2d(y, mid, kernel=(3, 3), stride=stride,
                            name=prefix + "_dw")
    y = gb.batch_norm(y, mid, name=prefix + "_bn1")
    y = gb.activation(y, "relu6", name=prefix + "_relu1")
    y = gb.conv2d(y, mid, cout, kernel=(1, 1), name=prefix + "_project")
    y = gb.batch_norm(y, cout, name=prefix + "_bn2")
    if stride == 1 and cin == cout:
        y = gb.add(x, y, name=prefix + "_add")
    return y


def mobilenet(mini: bool = False) -> ModelSpec:
    """MobileNetV2 '1.0 224' on ImageNet (~3.5M params at paper scale)."""
    gb = GraphBuilder("mobilenet-mini" if mini else "mobilenet",
                      materialize=mini)
    if mini:
        x = gb.input("image", (6, 6, 2))
        x = _inverted_residual(gb, x, 2, 2, 1, 2, "block0")
        x = gb.global_avg_pool(x)
        x = gb.fully_connected(x, 2, 4)
        return gb.build([x])
    x = gb.input("image", (224, 224, 3))
    x = gb.conv2d(x, 3, 32, kernel=(3, 3), stride=2)
    x = gb.batch_norm(x, 32)
    x = gb.activation(x, "relu6")
    settings = [(1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
                (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1)]
    cin = 32
    idx = 0
    for t, c, n, s in settings:
        for i in range(n):
            x = _inverted_residual(gb, x, cin, c, s if i == 0 else 1, t,
                                   "ir%d" % idx)
            cin = c
            idx += 1
    x = gb.conv2d(x, cin, 1280, kernel=(1, 1))
    x = gb.batch_norm(x, 1280)
    x = gb.activation(x, "relu6")
    x = gb.global_avg_pool(x)
    x = gb.fully_connected(x, 1280, 1000)
    x = gb.softmax(x)
    return gb.build([x])


# ----------------------------------------------------------------------------- DLRM


def dlrm(mini: bool = False) -> ModelSpec:
    """Facebook's deep recommender (MLPerf DLRM, ~764K params)."""
    gb = GraphBuilder("dlrm-mini" if mini else "dlrm", materialize=mini)
    if mini:
        tables, dim, rows, dense_dim = 2, 4, 8, 4
        bottom, top = [dense_dim, 4, dim], [dim + (tables + 1) ** 2, 4, 1]
    else:
        tables, dim, rows, dense_dim = 26, 32, 280, 13
        bottom = [dense_dim, 512, 256, dim]
        top = [dim + (tables + 1) ** 2, 384, 192, 1]
    dense = gb.input("dense", (1, dense_dim))
    x = _mlp(gb, dense, bottom, prefix="bottom")
    embeddings = [
        gb.gather([i % rows], (rows, dim), name="emb%d" % i)
        for i in range(tables)
    ]
    stacked = gb.concat([x] + embeddings, axis=0, name="features")  # (T+1, dim)
    inter = gb.batch_matmul(stacked, gb.transpose(stacked, (1, 0)),
                            name="interactions")
    flat = gb.flatten(inter)
    dense_flat = gb.flatten(x)
    top_in = gb.concat([dense_flat, flat], axis=0)
    top_in = gb.reshape(top_in, (1, dim + (tables + 1) ** 2))
    out = _mlp(gb, top_in, top, final_activation="sigmoid", prefix="top")
    return gb.build([out])


# --------------------------------------------------------------------------- Twitter


def twitter(mini: bool = False) -> ModelSpec:
    """MaskNet from Twitter's recommendation stack (~48.1M params)."""
    gb = GraphBuilder("twitter-mini" if mini else "twitter", materialize=mini)
    if mini:
        tables, dim, rows, blocks, agg, hidden = 2, 4, 8, 1, 4, 8
    else:
        tables, dim, rows, blocks, agg, hidden = 20, 128, 9500, 3, 256, 512
    feat_dim = tables * dim
    embeddings = [
        gb.gather([i % rows], (rows, dim), name="emb%d" % i)
        for i in range(tables)
    ]
    feats = gb.concat(embeddings, axis=1, name="features")  # (1, feat_dim)
    x = feats
    for b in range(blocks):
        # instance-guided mask: feat -> agg -> feat, sigmoid-gated
        m = gb.fully_connected(feats, feat_dim, agg, name="mask%d_fc1" % b)
        m = gb.activation(m, "relu", name="mask%d_relu" % b)
        m = gb.fully_connected(m, agg, feat_dim, name="mask%d_fc2" % b)
        m = gb.activation(m, "sigmoid", name="mask%d_gate" % b)
        gated = gb.mul(x, m, name="mask%d_mul" % b)
        x = gb.fully_connected(gated, feat_dim, feat_dim,
                               name="mask%d_hidden" % b)
        x = gb.layer_norm(x, feat_dim, name="mask%d_ln" % b)
        x = gb.activation(x, "relu", name="mask%d_out" % b)
    x = gb.fully_connected(x, feat_dim, hidden, name="head_fc1")
    x = gb.activation(x, "relu", name="head_relu")
    x = gb.fully_connected(x, hidden, 1, name="head_fc2")
    x = gb.activation(x, "sigmoid", name="score")
    return gb.build([x])


# ----------------------------------------------------------------------------- GPT-2


def _transformer_block(gb: GraphBuilder, x: str, seq: int, dim: int,
                       heads: int, mlp_dim: int, prefix: str) -> str:
    h = gb.layer_norm(x, dim, name=prefix + "_ln1")
    attn = gb.attention_block(h, seq, dim, heads, name=prefix + "_attn")
    x = gb.add(x, attn, name=prefix + "_res1")
    h = gb.layer_norm(x, dim, name=prefix + "_ln2")
    h = gb.fully_connected(h, dim, mlp_dim, name=prefix + "_mlp1")
    h = gb.activation(h, "gelu", name=prefix + "_gelu")
    h = gb.fully_connected(h, mlp_dim, dim, name=prefix + "_mlp2")
    return gb.add(x, h, name=prefix + "_res2")


def gpt2(mini: bool = False) -> ModelSpec:
    """Distilled GPT-2 (DistilGPT2: 6 layers, d=768, ~81.3M params).

    The LM head is weight-tied to the token embedding, so it adds no
    parameters; outputs are the final hidden states.
    """
    gb = GraphBuilder("gpt2-mini" if mini else "gpt2", materialize=mini)
    if mini:
        vocab, seq, dim, heads, layers, mlp_dim = 16, 3, 8, 2, 1, 16
    else:
        vocab, seq, dim, heads, layers, mlp_dim = 50257, 2, 768, 12, 6, 3072
    tokens = gb.gather([i % vocab for i in range(seq)], (vocab, dim),
                       name="wte")
    pos = gb.gather(list(range(seq)), (seq, dim), name="wpe")
    x = gb.add(tokens, pos, name="embed")
    for layer in range(layers):
        x = _transformer_block(gb, x, seq, dim, heads, mlp_dim,
                               "block%d" % layer)
    x = gb.layer_norm(x, dim, name="ln_f")
    return gb.build([x])


# -------------------------------------------------------------------------- Diffusion


def _res_block(gb: GraphBuilder, x: str, cin: int, cout: int,
               prefix: str) -> str:
    y = gb.conv2d(x, cin, cout, kernel=(3, 3), name=prefix + "_conv1")
    y = gb.batch_norm(y, cout, name=prefix + "_bn1")
    y = gb.activation(y, "silu", name=prefix + "_act1")
    y = gb.conv2d(y, cout, cout, kernel=(3, 3), name=prefix + "_conv2")
    y = gb.batch_norm(y, cout, name=prefix + "_bn2")
    if cin != cout:
        x = gb.conv2d(x, cin, cout, kernel=(1, 1), name=prefix + "_skip")
    y = gb.add(x, y, name=prefix + "_add")
    return gb.activation(y, "silu", name=prefix + "_act2")


def diffusion(mini: bool = False) -> ModelSpec:
    """A small latent text-to-image diffusion UNet (~19.5M params)."""
    gb = GraphBuilder("diffusion-mini" if mini else "diffusion",
                      materialize=mini)
    if mini:
        x = gb.input("latent", (4, 4, 2))
        x = _res_block(gb, x, 2, 4, "down0")
        x = _res_block(gb, x, 4, 2, "up0")
        return gb.build([x])
    x = gb.input("latent", (32, 32, 4))
    widths = [160, 256, 320]
    blocks = [4, 3, 2]
    x = gb.conv2d(x, 4, widths[0], kernel=(3, 3), name="stem")
    skips = []
    cin = widths[0]
    for d, w in enumerate(widths):
        for b in range(blocks[d]):
            x = _res_block(gb, x, cin if b == 0 else w, w,
                           "down%d_%d" % (d, b))
        skips.append((x, w))
        if d < len(widths) - 1:
            x = gb.avg_pool(x, 2, name="down%d_pool" % d)
        cin = w
    x = _res_block(gb, x, cin, cin, "middle")
    for d in reversed(range(len(widths))):
        skip, w = skips[d]
        if d < len(widths) - 1:
            # upsample by reference duplication is a shape op; approximate
            # with a 1x1 conv + concat of the skip at the stored resolution
            x = gb.conv2d(x, cin, w, kernel=(1, 1), name="up%d_proj" % d)
            x = gb.pad(x, pad_width=_up_pad(d, widths), name="up%d_pad" % d)
        x = gb.concat([x, skip], axis=2, name="up%d_cat" % d)
        x = _res_block(gb, x, 2 * w, w, "up%d_res" % d)
        cin = w
    x = gb.conv2d(x, cin, 4, kernel=(3, 3), name="out")
    return gb.build([x])


def _up_pad(d: int, widths) -> tuple:
    # pad the pooled map back to the skip's spatial size
    size = 32 >> d
    pooled = 32 >> (d + 1)
    pad = size - pooled
    return ((0, pad), (0, pad), (0, 0))


# --------------------------------------------------------------------------- registry

MODEL_BUILDERS = {
    "mnist": mnist,
    "resnet18": resnet18,
    "vgg16": vgg16,
    "mobilenet": mobilenet,
    "dlrm": dlrm,
    "twitter": twitter,
    "gpt2": gpt2,
    "diffusion": diffusion,
}


def get_model(name: str, scale: str = "paper") -> ModelSpec:
    """Fetch a zoo model at 'paper' (shape-only) or 'mini' (runnable) scale."""
    try:
        build = MODEL_BUILDERS[name]
    except KeyError:
        raise UnknownNameError(
            "unknown model %r; available: %s" % (name, sorted(MODEL_BUILDERS)),
            model=name,
        ) from None
    if scale not in ("paper", "mini"):
        raise SpecError("scale must be 'paper' or 'mini'", scale=scale)
    return build(mini=scale == "mini")


def model_names() -> List[str]:
    return sorted(MODEL_BUILDERS)
