"""Transpiler from a tflite-like flat model format to :class:`ModelSpec`.

The paper's ZKML accepts models in tflite format (§8).  Offline we cannot
ship TensorFlow, so the transpiler consumes the equivalent information as
a plain dict — named buffers plus a flat operator list with tflite-style
opcodes — and emits our graph IR.  ``export`` round-trips a ModelSpec
back into the flat format.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.model.spec import LayerSpec, ModelSpec

#: tflite-style opcode -> our layer kind.
OPCODE_TO_KIND = {
    "CONV_2D": "conv2d",
    "DEPTHWISE_CONV_2D": "depthwise_conv2d",
    "FULLY_CONNECTED": "fully_connected",
    "BATCH_MATMUL": "batch_matmul",
    "SOFTMAX": "softmax",
    "RELU": "relu",
    "RELU6": "relu6",
    "LEAKY_RELU": "leaky_relu",
    "ELU": "elu",
    "LOGISTIC": "sigmoid",
    "TANH": "tanh",
    "GELU": "gelu",
    "HARD_SWISH": "hard_swish",
    "EXP": "exp",
    "SQRT": "sqrt",
    "RSQRT": "rsqrt",
    "LOG": "log",
    "ADD": "add",
    "SUB": "sub",
    "MUL": "mul",
    "DIV": "div",
    "SQUARED_DIFFERENCE": "squared_difference",
    "SUM": "reduce_sum",
    "MEAN": "reduce_mean",
    "MAX_POOL_2D": "max_pool2d",
    "AVERAGE_POOL_2D": "avg_pool2d",
    "RESHAPE": "reshape",
    "TRANSPOSE": "transpose",
    "CONCATENATION": "concat",
    "PAD": "pad",
    "SLICE": "slice",
    "SQUEEZE": "squeeze",
    "EXPAND_DIMS": "expand_dims",
    "GATHER": "gather",
    "SPLIT": "split",
    "IDENTITY": "identity",
    "FLATTEN": "flatten",
    "BATCH_NORM": "batch_norm",
    "LAYER_NORM": "layer_norm",
    "RMS_NORM": "rms_norm",
    "GLOBAL_AVERAGE_POOL": "global_avg_pool",
}

KIND_TO_OPCODE = {v: k for k, v in OPCODE_TO_KIND.items()}


class TranspileError(ValueError):
    """Raised for malformed or unsupported flat models."""


def transpile(flat: Dict) -> ModelSpec:
    """Convert a tflite-like flat dict into a validated ModelSpec.

    Expected shape::

        {
          "name": "mnist",
          "inputs": {"image": [28, 28, 1]},
          "buffers": {"w0": <array or shape list>, ...},
          "operators": [
            {"opcode": "CONV_2D", "name": "conv1", "inputs": ["image"],
             "params": {"weight": "w0", "bias": "b0"},
             "options": {"kernel": [3, 3], "filters": 8}},
            ...
          ],
          "outputs": ["logits"]
        }
    """
    for key in ("name", "inputs", "operators", "outputs"):
        if key not in flat:
            raise TranspileError("flat model missing %r" % key)
    buffers = flat.get("buffers", {})

    def resolve(ref):
        if isinstance(ref, str):
            try:
                value = buffers[ref]
            except KeyError:
                raise TranspileError("unknown buffer %r" % ref) from None
        else:
            value = ref
        if isinstance(value, (list, np.ndarray)):
            arr = np.asarray(value)
            if arr.dtype == object or arr.dtype.kind in "if":
                return arr.astype(np.float64)
            return arr
        if isinstance(value, tuple):
            return tuple(value)
        raise TranspileError("buffer %r has unsupported type" % ref)

    layers: List[LayerSpec] = []
    for op in flat["operators"]:
        opcode = op.get("opcode")
        if opcode not in OPCODE_TO_KIND:
            raise TranspileError(
                "unsupported opcode %r; supported: %d opcodes"
                % (opcode, len(OPCODE_TO_KIND))
            )
        options = dict(op.get("options", {}))
        # tflite stores kernel/pad tuples as lists; normalize
        for key in ("kernel", "shape", "axes"):
            if key in options and isinstance(options[key], list):
                options[key] = tuple(options[key])
        if "pad_width" in options:
            options["pad_width"] = tuple(tuple(p) for p in options["pad_width"])
        params = {
            pname: resolve(ref) for pname, ref in op.get("params", {}).items()
        }
        layers.append(
            LayerSpec(
                name=op.get("name") or "op_%d" % len(layers),
                kind=OPCODE_TO_KIND[opcode],
                inputs=list(op.get("inputs", [])),
                attrs=options,
                params=params,
            )
        )

    spec = ModelSpec(
        name=flat["name"],
        inputs={k: tuple(v) for k, v in flat["inputs"].items()},
        layers=layers,
        outputs=list(flat["outputs"]),
    )
    spec.validate()
    return spec


def export(spec: ModelSpec) -> Dict:
    """Round-trip a ModelSpec back into the flat format."""
    buffers: Dict[str, object] = {}
    operators = []
    for layer in spec.layers:
        params = {}
        for pname, value in layer.params.items():
            ref = "%s/%s" % (layer.name, pname)
            buffers[ref] = (
                np.asarray(value).tolist()
                if isinstance(value, np.ndarray)
                else tuple(value)
            )
            params[pname] = ref
        operators.append(
            {
                "opcode": KIND_TO_OPCODE[layer.kind],
                "name": layer.name,
                "inputs": list(layer.inputs),
                "params": params,
                "options": dict(layer.attrs),
            }
        )
    return {
        "name": spec.name,
        "inputs": {k: list(v) for k, v in spec.inputs.items()},
        "buffers": buffers,
        "operators": operators,
        "outputs": list(spec.outputs),
    }
