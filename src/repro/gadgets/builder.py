"""CircuitBuilder: the synthesis context gadgets lay rows into.

The builder owns the shared advice columns (the grid width the optimizer
chose), a row cursor, the lookup tables (pointwise non-linearity tables
and range tables, each living in its own fixed columns), and a cache of
constant cells.  Gadget instances are cached so each gadget type declares
its selector, gate, and lookups exactly once per circuit.

Lookup-table convention: inputs are gated as ``sel * (x + OFFSET)`` with
``OFFSET`` placing every valid entry at a nonzero value, and each table
carries an all-zero default row.  Rows not using the gadget therefore
look up the default tuple, while active rows can only hit real entries.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.field.prime_field import GOLDILOCKS, PrimeField
from repro.halo2 import Assignment, ConstraintSystem, MockProver, Ref
from repro.halo2.column import Column
from repro.quantize import FixedPoint
from repro.tensor import Cell, Entry


@dataclass(frozen=True)
class Region:
    """A named band of gadget rows (e.g. the rows one model layer owns).

    ``end`` is exclusive.  Regions let the MockProver and ``zkml
    diagnose`` attribute a failing row back to the layer or gadget that
    laid it out.
    """

    name: str
    kind: str
    start: int
    end: int


class NonlinearTable:
    """A two-column lookup table enumerating a pointwise function.

    Covers fixed-point inputs in ``[-2^(bits-1), 2^(bits-1))``; the input
    column stores ``x + OFFSET`` with ``OFFSET = 2^(bits-1) + 1`` so valid
    entries are the nonzero values ``1 .. 2^bits``.
    """

    def __init__(self, builder: "CircuitBuilder", fn_name: str,
                 fn: Callable[[float], float]):
        self.fn_name = fn_name
        self.bits = builder.lookup_bits
        self.offset = (1 << (self.bits - 1)) + 1
        self.in_col = builder.cs.fixed_column()
        self.out_col = builder.cs.fixed_column()
        fp = builder.fp
        size = 1 << self.bits
        if size + 1 > builder.asg.n:
            raise ValueError(
                "nonlinear table needs %d rows but grid has %d"
                % (size + 1, builder.asg.n)
            )
        self._map: Dict[int, int] = {}
        half = size >> 1
        from repro.gadgets.nonlinear import fixed_eval

        for row in range(size):
            x = row - half
            y = fixed_eval(fn_name, x, fp)
            self._map[x] = y
            builder.asg.assign_fixed(self.in_col, row, x + self.offset)
            builder.asg.assign_fixed(self.out_col, row, y)
        for row in range(size, builder.asg.n):
            builder.asg.assign_fixed(self.in_col, row, 0)
            builder.asg.assign_fixed(self.out_col, row, 0)

    def apply(self, x: int) -> int:
        """The table's exact output for a fixed-point input."""
        try:
            return self._map[x]
        except KeyError:
            raise ValueError(
                "input %d outside the %d-bit table range of %r"
                % (x, self.bits, self.fn_name)
            ) from None


class RangeTable:
    """A one-column table of ``v + 1`` for ``v in [0, bound)`` plus a zero
    default row; lookup inputs are gated as ``sel * (expr + 1)``."""

    def __init__(self, builder: "CircuitBuilder", bound: int):
        if bound < 1:
            raise ValueError("range bound must be positive")
        if bound + 1 > builder.asg.n:
            raise ValueError(
                "range table [0, %d) needs %d rows but grid has %d"
                % (bound, bound + 1, builder.asg.n)
            )
        self.bound = bound
        self.col = builder.cs.fixed_column()
        for row in range(bound):
            builder.asg.assign_fixed(self.col, row, row + 1)
        for row in range(bound, builder.asg.n):
            builder.asg.assign_fixed(self.col, row, 0)


class CircuitBuilder:
    """Synthesis context: grid columns, row cursor, tables, constants."""

    def __init__(
        self,
        k: int,
        num_cols: int,
        scale_bits: int,
        lookup_bits: Optional[int] = None,
        field: PrimeField = GOLDILOCKS,
    ):
        if num_cols < 3:
            raise ValueError("gadgets need at least 3 columns")
        self.field = field
        self.k = k
        self.num_cols = num_cols
        self.scale_bits = scale_bits
        self.fp = FixedPoint(scale_bits)
        self.lookup_bits = lookup_bits if lookup_bits is not None else k - 1
        if self.lookup_bits < 1:
            raise ValueError("lookup_bits must be at least 1")
        self.cs = ConstraintSystem(field)
        self.columns: List[Column] = []
        for _ in range(num_cols):
            col = self.cs.advice_column()
            self.cs.enable_equality(col)
            self.columns.append(col)
        self.asg = Assignment(self.cs, k)
        self._row = 0
        #: Row regions recorded during synthesis (one per model layer).
        self.regions: List[Region] = []
        self._gadgets: Dict[Tuple, object] = {}
        self._nl_tables: Dict[str, NonlinearTable] = {}
        self._range_tables: Dict[int, RangeTable] = {}
        self._const_col = self.cs.fixed_column()
        self.cs.enable_equality(self._const_col)
        self._const_cache: Dict[int, Entry] = {}
        self._const_row = 0
        self._weight_col = None
        self._weight_row = 0

    # -- gadgets -----------------------------------------------------------------

    def gadget(self, cls: Type, **params):
        """Get (or lazily configure) a gadget instance; cached per params."""
        key = (cls, tuple(sorted(params.items())))
        inst = self._gadgets.get(key)
        if inst is None:
            inst = cls(self, **params) if params else cls(self)
            self._gadgets[key] = inst
        return inst

    # -- rows ---------------------------------------------------------------------

    @property
    def rows_used(self) -> int:
        return self._row

    def alloc_row(self, selector: Column) -> int:
        """Claim the next free row and enable a selector on it."""
        row = self._row
        if row >= self.asg.n:
            raise ValueError(
                "circuit overflow: needs more than 2^%d rows" % self.k
            )
        self.asg.enable_selector(selector, row)
        self._row += 1
        return row

    def alloc_row_unselected(self) -> int:
        """Claim the next free row without enabling any selector (the
        continuation row of a multi-row gadget)."""
        row = self._row
        if row >= self.asg.n:
            raise ValueError(
                "circuit overflow: needs more than 2^%d rows" % self.k
            )
        self._row += 1
        return row

    @contextmanager
    def region(self, name: str, kind: str = ""):
        """Record which rows the enclosed synthesis claims.

        Regions may nest; inner (more specific) regions are appended
        after their parents, and row lookups prefer the innermost match.
        """
        start = self._row
        index = len(self.regions)
        self.regions.append(Region(name, kind, start, start))
        try:
            yield
        finally:
            self.regions[index] = Region(name, kind, start, self._row)

    def place(self, row: int, col_idx: int, entry: Entry) -> Cell:
        """Write an entry's value into a cell.

        The first placement materializes the entry (the cell becomes its
        home); later placements copy-constrain back to that home, so every
        reuse of a value is sound.
        """
        column = self.columns[col_idx]
        self.asg.assign_advice(column, row, entry.value)
        cell = Cell(column, row)
        if entry.cell is None:
            entry.cell = cell
        else:
            self.asg.copy(entry.cell.column, entry.cell.row, column, row)
        return cell

    def new_entry(self, value: int, row: int, col_idx: int) -> Entry:
        """Create and place a fresh (output) entry."""
        entry = Entry(value)
        self.place(row, col_idx, entry)
        return entry

    # -- constants & tables -----------------------------------------------------------

    def constant(self, value: int) -> Entry:
        """A shared, copy-constrainable constant cell (fixed column)."""
        entry = self._const_cache.get(value)
        if entry is None:
            if self._const_row >= self.asg.n:
                raise ValueError("constant column overflow")
            self.asg.assign_fixed(self._const_col, self._const_row, value)
            entry = Entry(value, Cell(self._const_col, self._const_row))
            self._const_cache[value] = entry
            self._const_row += 1
        return entry

    def zero(self) -> Entry:
        return self.constant(0)

    def nonlinear_table(self, fn_name: str) -> NonlinearTable:
        table = self._nl_tables.get(fn_name)
        if table is None:
            from repro.gadgets.nonlinear import NONLINEAR_FUNCTIONS

            fn = NONLINEAR_FUNCTIONS[fn_name]
            table = NonlinearTable(self, fn_name, fn)
            self._nl_tables[fn_name] = table
        return table

    def range_table(self, bound: int) -> RangeTable:
        table = self._range_tables.get(bound)
        if table is None:
            table = RangeTable(self, bound)
            self._range_tables[bound] = table
        return table

    def selector_ref(self, selector: Column) -> Ref:
        return Ref(selector)

    # -- checking -----------------------------------------------------------------------

    def mock_check(self) -> None:
        """Run the MockProver and raise on any constraint violation."""
        MockProver(self.cs, self.asg, regions=self.regions).assert_satisfied()

    # -- stats (mirrored by the physical-layout simulator) ---------------------------------

    def table_rows_needed(self) -> int:
        """Rows the largest lookup table in this circuit requires."""
        rows = 0
        if self._nl_tables:
            rows = max((1 << t.bits) + 1 for t in self._nl_tables.values())
        for t in self._range_tables.values():
            rows = max(rows, t.bound + 1)
        return rows

    def min_k(self) -> int:
        """Smallest k whose grid fits both gadget rows and tables."""
        needed = max(self.rows_used, self.table_rows_needed(), 1)
        return max(int(math.ceil(math.log2(needed))), 1)

    def expose(self, entries) -> None:
        """Expose entries as public inputs (a fresh instance column).

        Each value is copied into an instance column cell, so the verifier
        sees exactly the values the circuit computed — this is how model
        outputs become part of the statement being proven.
        """
        column = self.cs.instance_column()
        self.cs.enable_equality(column)
        for row, entry in enumerate(entries):
            if row >= self.asg.n:
                raise ValueError("too many public values for the grid")
            if entry.cell is None:
                raise ValueError("cannot expose an unplaced entry")
            self.asg.assign_instance(column, row, entry.value)
            self.asg.copy(entry.cell.column, entry.cell.row, column, row)

    def weight_entries(self, values) -> List[Entry]:
        """Materialize model parameters in dedicated fixed columns.

        Weights live in fixed columns so they are baked into the
        verifying key at keygen: the vk digest is then a binding
        commitment to the model, and proving/verifying keys are
        model-specific (paper §8).  Gadgets that consume a weight add a
        copy constraint back to its fixed cell.
        """
        out: List[Entry] = []
        for value in values:
            if self._weight_row >= self.asg.n or self._weight_col is None:
                self._weight_col = self.cs.fixed_column()
                self.cs.enable_equality(self._weight_col)
                self._weight_row = 0
            value = int(value)
            self.asg.assign_fixed(self._weight_col, self._weight_row, value)
            out.append(Entry(value, Cell(self._weight_col, self._weight_row)))
            self._weight_row += 1
        return out
