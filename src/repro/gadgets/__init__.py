"""ZKML gadgets: efficient single-row constraint templates (paper §5).

Gadgets fall into four categories:

1. *Shape operations* — free, implemented on :class:`repro.tensor.Tensor`.
2. *Arithmetic operations* — Add, Sub, Mul, Square, SquaredDiff, Sum,
   DotProd (with and without bias), Div/DivRound by constants (Table 4).
3. *Pointwise non-linearities* — lookup-table gadgets for ReLU, sigmoid,
   tanh, exp, ELU, GELU, and friends; plus the bit-decomposition ReLU
   alternative that trades rows for tables.
4. *Specialized operations* — the maximum operator, scaled exponential,
   and variable rounded division (the softmax building blocks).

Every constraint lives within a single row (§4.2, "future-proofing");
Table 13's multi-row comparison gadgets live in
:mod:`repro.gadgets.multirow`.
"""

from repro.gadgets.base import Gadget, gadget_registry
from repro.gadgets.builder import CircuitBuilder
from repro.gadgets.arithmetic import (
    AddGadget,
    DivRoundConstGadget,
    MulGadget,
    ScaleConstGadget,
    SquareGadget,
    SquaredDiffGadget,
    SubGadget,
    SumGadget,
)
from repro.gadgets.dotprod import DotProdBiasGadget, DotProdGadget
from repro.gadgets.nonlinear import NONLINEAR_FUNCTIONS, PointwiseGadget
from repro.gadgets.special import MaxGadget, VarDivGadget, VarDivWideGadget
from repro.gadgets.bitdecomp import BitDecompReluGadget
from repro.gadgets.multirow import (
    MultiRowAddGadget,
    MultiRowDotGadget,
    MultiRowMaxGadget,
)

__all__ = [
    "Gadget",
    "gadget_registry",
    "CircuitBuilder",
    "AddGadget",
    "SubGadget",
    "MulGadget",
    "SquareGadget",
    "SquaredDiffGadget",
    "SumGadget",
    "DivRoundConstGadget",
    "ScaleConstGadget",
    "DotProdGadget",
    "DotProdBiasGadget",
    "PointwiseGadget",
    "NONLINEAR_FUNCTIONS",
    "MaxGadget",
    "VarDivGadget",
    "VarDivWideGadget",
    "BitDecompReluGadget",
    "MultiRowAddGadget",
    "MultiRowMaxGadget",
    "MultiRowDotGadget",
]
