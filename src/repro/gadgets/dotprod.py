"""Dot-product gadgets (paper §5.2).

Two variants the optimizer chooses between:

- :class:`DotProdGadget` — no bias: ``z = sum x_i * y_i`` with
  ``n = floor((N-1)/2)`` terms per row; long dot products are split into
  partials and combined with the Sum gadget.
- :class:`DotProdBiasGadget` — with bias/accumulator: ``z = acc + sum
  x_i * y_i`` with ``n = floor((N-2)/2)`` terms per row; long dot
  products chain the accumulator through the rows, no Sum gadget needed.

Results are *raw* (scale 2·scale_bits); linear layers rescale once at the
end, which is what keeps precision through the accumulation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.halo2.expression import Constant, Expression, Ref
from repro.gadgets.base import Gadget
from repro.tensor import Entry


class DotProdGadget(Gadget):
    """z = sum x_i * y_i (no bias slot); one op per row."""

    name = "dot_prod"
    cells_per_op = 0

    @classmethod
    def slots_per_row(cls, num_cols: int) -> int:
        return 1

    @classmethod
    def terms_per_row(cls, num_cols: int) -> int:
        return (num_cols - 1) // 2

    @classmethod
    def rows_for_ops(cls, num_ops: int, num_cols: int) -> int:
        return num_ops

    def _configure(self) -> None:
        b = self.builder
        n = self.terms_per_row(b.num_cols)
        xs = [Ref(c) for c in b.columns[:n]]
        ys = [Ref(c) for c in b.columns[n : 2 * n]]
        z = Ref(b.columns[-1])
        acc: Expression = Constant(0)
        for x, y in zip(xs, ys):
            acc = acc + x * y
        b.cs.create_gate("dot_prod", [z - acc], selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Sequence[Entry]]]) -> List[Entry]:
        b = self.builder
        ((xs, ys),) = ops
        n = self.terms_per_row(b.num_cols)
        if len(xs) != len(ys) or len(xs) > n:
            raise ValueError("dot product row takes up to %d aligned terms" % n)
        row = b.alloc_row(self.selector)
        total = 0
        for i, (x, y) in enumerate(zip(xs, ys)):
            b.place(row, i, x)
            b.place(row, n + i, y)
            total += x.value * y.value
        return [b.new_entry(total, row, b.num_cols - 1)]


class DotProdBiasGadget(Gadget):
    """z = acc + sum x_i * y_i; accumulation chains across rows."""

    name = "dot_prod_bias"
    cells_per_op = 0

    @classmethod
    def slots_per_row(cls, num_cols: int) -> int:
        return 1

    @classmethod
    def terms_per_row(cls, num_cols: int) -> int:
        return (num_cols - 2) // 2

    @classmethod
    def rows_for_ops(cls, num_ops: int, num_cols: int) -> int:
        return num_ops

    def _configure(self) -> None:
        b = self.builder
        n = self.terms_per_row(b.num_cols)
        xs = [Ref(c) for c in b.columns[:n]]
        ys = [Ref(c) for c in b.columns[n : 2 * n]]
        acc_ref = Ref(b.columns[-2])
        z = Ref(b.columns[-1])
        acc: Expression = acc_ref
        for x, y in zip(xs, ys):
            acc = acc + x * y
        b.cs.create_gate("dot_prod_bias", [z - acc], selector=self.selector)

    def assign_row(self, ops: Sequence) -> List[Entry]:
        b = self.builder
        ((xs, ys, bias),) = ops
        n = self.terms_per_row(b.num_cols)
        if len(xs) != len(ys) or len(xs) > n:
            raise ValueError("dot product row takes up to %d aligned terms" % n)
        row = b.alloc_row(self.selector)
        total = bias.value
        for i, (x, y) in enumerate(zip(xs, ys)):
            b.place(row, i, x)
            b.place(row, n + i, y)
            total += x.value * y.value
        b.place(row, b.num_cols - 2, bias)
        return [b.new_entry(total, row, b.num_cols - 1)]

    def dot(self, xs: Sequence[Entry], ys: Sequence[Entry], bias: Entry) -> Entry:
        """A full-length dot product, chaining the accumulator."""
        if len(xs) != len(ys):
            raise ValueError("dot product needs aligned vectors")
        n = self.terms_per_row(self.builder.num_cols)
        acc = bias
        for start in range(0, len(xs), n):
            (acc,) = self.assign_row(
                [(xs[start : start + n], ys[start : start + n], acc)]
            )
        return acc
