"""Specialized gadgets: maximum and variable rounded division (paper §5.1).

These are the softmax building blocks:

- Max: ``c = max(a, b)`` via ``(c-a)(c-b) = 0`` plus two range lookups
  ``c-a, c-b in [0, N)`` (reusing the range table).
- VarDiv: ``c = round(b / a)`` for witness-dependent ``a`` via the
  identity ``2b + a = 2a*c + r`` with ``r in [0, 2a)`` enforced by the
  two range lookups ``r in [0, N)`` and ``2a - r - 1 in [0, N)``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.halo2.expression import Constant, Ref
from repro.gadgets.base import Gadget
from repro.tensor import Entry


class MaxGadget(Gadget):
    """c = max(a, b); three cells per op."""

    name = "max"
    cells_per_op = 3

    def _configure(self) -> None:
        b = self.builder
        bound = 1 << b.lookup_bits
        table = b.range_table(bound)
        self.bound = bound
        sel = Ref(self.selector)
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            a, y, c = (Ref(b.columns[3 * slot + i]) for i in range(3))
            constraints.append((c - a) * (c - y))
            # c - a and c - b are in [0, bound): gated as sel * (diff + 1)
            b.cs.add_lookup(
                "max/%d/ge_a" % slot,
                inputs=[sel * (c - a + 1)],
                table=[Ref(table.col)],
            )
            b.cs.add_lookup(
                "max/%d/ge_b" % slot,
                inputs=[sel * (c - y + 1)],
                table=[Ref(table.col)],
            )
        b.cs.create_gate("max", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        for slot, (x, y) in enumerate(ops):
            c = max(x.value, y.value)
            if c - min(x.value, y.value) >= self.bound:
                raise ValueError(
                    "max gadget operands differ by %d, beyond range table bound %d"
                    % (c - min(x.value, y.value), self.bound)
                )
            b.place(row, 3 * slot, x)
            b.place(row, 3 * slot + 1, y)
            outputs.append(b.new_entry(c, row, 3 * slot + 2))
        return outputs

    def max_vector(self, values: Sequence[Entry]) -> Entry:
        """Maximum of a vector via a pairwise tournament."""
        work = list(values)
        while len(work) > 1:
            pairs = [
                (work[i], work[i + 1]) for i in range(0, len(work) - 1, 2)
            ]
            reduced = self.assign_many(pairs)
            if len(work) % 2:
                reduced.append(work[-1])
            work = reduced
        return work[0]


class VarDivGadget(Gadget):
    """c = round(b / a) for witness-dependent a > 0; four cells per op."""

    name = "var_div"
    cells_per_op = 4

    def _configure(self) -> None:
        b = self.builder
        bound = 1 << b.lookup_bits
        table = b.range_table(bound)
        self.bound = bound
        sel = Ref(self.selector)
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            a, num, c, r = (Ref(b.columns[4 * slot + i]) for i in range(4))
            constraints.append(2 * num + a - Constant(2) * a * c - r)
            b.cs.add_lookup(
                "var_div/%d/rem_lo" % slot,
                inputs=[sel * (r + 1)],
                table=[Ref(table.col)],
            )
            # r < 2a  <=>  2a - r - 1 in [0, bound)
            b.cs.add_lookup(
                "var_div/%d/rem_hi" % slot,
                inputs=[sel * (2 * a - r)],
                table=[Ref(table.col)],
            )
        b.cs.create_gate("var_div", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        for slot, (a, num) in enumerate(ops):
            if a.value <= 0:
                raise ValueError("var_div divisor must be positive")
            if 2 * a.value > self.bound:
                raise ValueError(
                    "var_div divisor %d exceeds range table bound %d; "
                    "decompose into limbs or raise lookup_bits"
                    % (a.value, self.bound // 2)
                )
            c = (2 * num.value + a.value) // (2 * a.value)
            r = 2 * num.value + a.value - 2 * a.value * c
            b.place(row, 4 * slot, a)
            b.place(row, 4 * slot + 1, num)
            outputs.append(b.new_entry(c, row, 4 * slot + 2))
            b.new_entry(r, row, 4 * slot + 3)
        return outputs


class VarDivWideGadget(Gadget):
    """c = round(b / a) for divisors beyond the range table (paper §5.1).

    When ``a`` exceeds the table bound N, the remainder ``r in [0, 2a)``
    and the strictness witness ``d = 2a - r - 1`` are decomposed into two
    limbs of ``lookup_bits`` each, every limb range-checked individually.
    Seven cells per op: a, b, c, r_lo, r_hi, d_lo, d_hi.
    """

    name = "var_div_wide"
    cells_per_op = 7

    def _configure(self) -> None:
        b = self.builder
        bound = 1 << b.lookup_bits
        table = b.range_table(bound)
        self.limb = bound
        sel = Ref(self.selector)
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            cols = [Ref(b.columns[7 * slot + i]) for i in range(7)]
            a, num, c, r_lo, r_hi, d_lo, d_hi = cols
            r = r_hi * Constant(self.limb) + r_lo
            d = d_hi * Constant(self.limb) + d_lo
            constraints.append(2 * num + a - Constant(2) * a * c - r)
            # r < 2a  <=>  2a - r - 1 = d >= 0 with d's limbs in range
            constraints.append(2 * a - r - Constant(1) - d)
            for idx, limb_ref in ((3, r_lo), (4, r_hi), (5, d_lo), (6, d_hi)):
                b.cs.add_lookup(
                    "var_div_wide/%d/limb%d" % (slot, idx),
                    inputs=[sel * (limb_ref + 1)],
                    table=[Ref(table.col)],
                )
        b.cs.create_gate("var_div_wide", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        for slot, (a, num) in enumerate(ops):
            if a.value <= 0:
                raise ValueError("var_div_wide divisor must be positive")
            if 2 * a.value > self.limb * self.limb:
                raise ValueError(
                    "divisor %d exceeds two-limb capacity %d"
                    % (a.value, self.limb * self.limb // 2)
                )
            c = (2 * num.value + a.value) // (2 * a.value)
            r = 2 * num.value + a.value - 2 * a.value * c
            d = 2 * a.value - r - 1
            base = 7 * slot
            b.place(row, base, a)
            b.place(row, base + 1, num)
            outputs.append(b.new_entry(c, row, base + 2))
            b.new_entry(r % self.limb, row, base + 3)
            b.new_entry(r // self.limb, row, base + 4)
            b.new_entry(d % self.limb, row, base + 5)
            b.new_entry(d // self.limb, row, base + 6)
        return outputs
