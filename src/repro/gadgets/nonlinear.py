"""Pointwise non-linearity gadgets via lookup tables (paper §5.1).

All activation functions except ReLU are hard to express with polynomial
constraints, so each is enumerated in a two-column table over the whole
fixed-point input range; the gadget packs ``floor(N/2)`` (input, output)
pairs per row, each pair checked by its own lookup argument into the
shared table.  The scaled exponential ``exp(x) * SF`` that softmax needs
is simply the ``exp`` entry of this registry (paper §5.1, "specialized
operations").
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from repro.halo2.expression import Ref
from repro.gadgets.base import Gadget
from repro.tensor import Entry


def _gelu(x: float) -> float:
    return 0.5 * x * (1.0 + math.erf(x / math.sqrt(2.0)))


def _softplus(x: float) -> float:
    # numerically stable log(1 + e^x)
    return max(x, 0.0) + math.log1p(math.exp(-abs(x)))


NONLINEAR_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "relu": lambda x: max(x, 0.0),
    "relu6": lambda x: min(max(x, 0.0), 6.0),
    "leaky_relu": lambda x: x if x >= 0 else 0.1 * x,
    "elu": lambda x: x if x >= 0 else math.expm1(x),
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)) if x > -30 else 0.0,
    "hard_sigmoid": lambda x: min(max(x / 6.0 + 0.5, 0.0), 1.0),
    "tanh": math.tanh,
    "exp": lambda x: math.exp(x) if x < 30 else math.exp(30),
    "gelu": _gelu,
    "silu": lambda x: x / (1.0 + math.exp(-x)) if x > -30 else 0.0,
    "hard_swish": lambda x: x * min(max(x / 6.0 + 0.5, 0.0), 1.0),
    "softplus": _softplus,
    "sqrt": lambda x: math.sqrt(x) if x > 0 else 0.0,
    "rsqrt": lambda x: 1.0 / math.sqrt(x) if x > 0 else 0.0,
    "reciprocal": lambda x: 1.0 / x if x != 0 else 0.0,
    "erf": math.erf,
    "log": lambda x: math.log(x) if x > 0 else 0.0,
    "mish": lambda x: x * math.tanh(_softplus(x)),
    "square_fn": lambda x: x * x,
}


def fixed_eval(fn_name: str, x_fixed: int, fp) -> int:
    """The exact fixed-point output a lookup table produces for an input.

    Shared by table construction (builder) and the layers' fixed-point
    reference semantics so the two can never drift apart.
    """
    fn = NONLINEAR_FUNCTIONS[fn_name]
    return fp.encode(fn(fp.decode(x_fixed)))


class PointwiseGadget(Gadget):
    """Apply one registered pointwise function; two cells per op."""

    name = "pointwise"
    cells_per_op = 2

    def __init__(self, builder, fn_name: str):
        if fn_name not in NONLINEAR_FUNCTIONS:
            raise KeyError(
                "unknown non-linearity %r; available: %s"
                % (fn_name, sorted(NONLINEAR_FUNCTIONS))
            )
        self.fn_name = fn_name
        super().__init__(builder)

    def _configure(self) -> None:
        b = self.builder
        self.table = b.nonlinear_table(self.fn_name)
        sel = Ref(self.selector)
        offset = self.table.offset
        for slot in range(self.slots_per_row(b.num_cols)):
            x = Ref(b.columns[2 * slot])
            y = Ref(b.columns[2 * slot + 1])
            b.cs.add_lookup(
                "pointwise/%s/%d" % (self.fn_name, slot),
                inputs=[sel * (x + offset), sel * y],
                table=[Ref(self.table.in_col), Ref(self.table.out_col)],
            )

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        padded = list(ops) + [(Entry(0),)] * (
            self.slots_per_row(b.num_cols) - len(ops)
        )
        for slot, (x,) in enumerate(padded):
            b.place(row, 2 * slot, x)
            y = self.table.apply(x.value)
            out = b.new_entry(y, row, 2 * slot + 1)
            if slot < len(ops):
                outputs.append(out)
        return outputs

    def apply_vector(self, values: Sequence[Entry]) -> List[Entry]:
        """Apply the function to a whole vector, packing rows."""
        return self.assign_many([(v,) for v in values])
