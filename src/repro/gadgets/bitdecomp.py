"""Bit-decomposition ReLU (paper §3's alternative representation).

Instead of a lookup table, decompose x into ``bits`` two's-complement
bits with boolean polynomial constraints, then gate the output on the
sign bit: ``y = (1 - sign) * x``.  Costs ``bits + 2`` cells per ReLU but
needs no lookup table — cheaper when a model does very few ReLUs, and
exactly the trade-off the optimizer weighs (paper §3's toy example).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.halo2.expression import Constant, Expression, Ref
from repro.gadgets.base import Gadget
from repro.tensor import Entry
from repro.resilience.errors import LayoutError


class BitDecompReluGadget(Gadget):
    """y = ReLU(x) via two's-complement bit decomposition."""

    name = "bit_decomp_relu"
    cells_per_op = 0  # depends on bits; see slots_per_row

    def __init__(self, builder, bits: int = 8):
        if bits < 2:
            raise ValueError("need at least 2 bits (value + sign)")
        self.bits = bits
        super().__init__(builder)

    @classmethod
    def slots_for(cls, num_cols: int, bits: int) -> int:
        return num_cols // (bits + 2)

    def slots_per_row_instance(self) -> int:
        return self.slots_for(self.builder.num_cols, self.bits)

    @classmethod
    def rows_for_ops_bits(cls, num_ops: int, num_cols: int, bits: int) -> int:
        slots = cls.slots_for(num_cols, bits)
        if slots == 0:
            raise LayoutError("row too narrow for %d-bit decomposition" % bits,
                              num_cols=num_cols, bits=bits)
        return -(-num_ops // slots)

    def _configure(self) -> None:
        b = self.builder
        bits = self.bits
        slots = self.slots_per_row_instance()
        if slots == 0:
            raise ValueError(
                "bit_decomp_relu with %d bits needs %d columns, got %d"
                % (bits, bits + 2, b.num_cols)
            )
        constraints = []
        for slot in range(slots):
            base = slot * (bits + 2)
            x = Ref(b.columns[base])
            y = Ref(b.columns[base + 1])
            bit_refs = [Ref(b.columns[base + 2 + i]) for i in range(bits)]
            for bit in bit_refs:
                constraints.append(bit * bit - bit)
            magnitude: Expression = Constant(0)
            for i in range(bits - 1):
                magnitude = magnitude + Constant(1 << i) * bit_refs[i]
            sign = bit_refs[bits - 1]
            constraints.append(x - magnitude + Constant(1 << (bits - 1)) * sign)
            constraints.append(y - (Constant(1) - sign) * magnitude)
        b.cs.create_gate("bit_decomp_relu/%d" % bits, constraints,
                         selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        bits = self.bits
        half = 1 << (bits - 1)
        row = b.alloc_row(self.selector)
        outputs = []
        for slot, (x,) in enumerate(ops):
            if not -half <= x.value < half:
                raise ValueError(
                    "value %d does not fit in %d-bit two's complement"
                    % (x.value, bits)
                )
            base = slot * (bits + 2)
            b.place(row, base, x)
            unsigned = x.value & ((1 << bits) - 1)
            y = max(x.value, 0)
            outputs.append(b.new_entry(y, row, base + 1))
            for i in range(bits):
                b.new_entry((unsigned >> i) & 1, row, base + 2 + i)
        return outputs

    def apply_vector(self, values: Sequence[Entry]) -> List[Entry]:
        slots = self.slots_per_row_instance()
        ops = [(v,) for v in values]
        outputs: List[Entry] = []
        for start in range(0, len(ops), slots):
            outputs.extend(self.assign_row(ops[start : start + slots]))
        return outputs
