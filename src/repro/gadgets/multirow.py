"""Multi-row gadget variants (paper §9.4, Table 13).

ZKML restricts itself to single-row constraints to stay compatible with
upcoming proving systems (§4.2).  These gadgets are the counterfactual:
the same operations expressed with constraints that span two adjacent
rows via rotations.  Table 13 measures that the single-row restriction
costs essentially nothing (the paper finds multi-row is up to 2.2%
*slower*).

Layouts (columns 0..2, two rows per op):

- adder: row0 = (x, y, _), row1 = (z, _, _); constraint x + y - z(next).
- max:   row0 = (a, b, _), row1 = (c, _, _); (c-a)(c-b) = 0 plus the two
  range lookups, all referencing the next row.
- dot:   row0 = (x1..xm), row1 = (y1..ym-1, z); z(next) = sum x_i y_i.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.halo2.expression import Constant, Expression, Ref
from repro.gadgets.base import Gadget
from repro.tensor import Entry


class MultiRowAddGadget(Gadget):
    """z = x + y with the output on the following row."""

    name = "multirow_add"
    cells_per_op = 0

    @classmethod
    def slots_per_row(cls, num_cols: int) -> int:
        return 1

    @classmethod
    def rows_for_ops(cls, num_ops: int, num_cols: int) -> int:
        return 2 * num_ops

    def _configure(self) -> None:
        b = self.builder
        x, y = Ref(b.columns[0]), Ref(b.columns[1])
        z_next = Ref(b.columns[0], 1)
        b.cs.create_gate("multirow_add", [x + y - z_next],
                         selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        ((x, y),) = ops
        row = b.alloc_row(self.selector)
        next_row = b.alloc_row_unselected()
        b.place(row, 0, x)
        b.place(row, 1, y)
        return [b.new_entry(x.value + y.value, next_row, 0)]


class MultiRowMaxGadget(Gadget):
    """c = max(a, b) with c on the following row."""

    name = "multirow_max"
    cells_per_op = 0

    @classmethod
    def slots_per_row(cls, num_cols: int) -> int:
        return 1

    @classmethod
    def rows_for_ops(cls, num_ops: int, num_cols: int) -> int:
        return 2 * num_ops

    def _configure(self) -> None:
        b = self.builder
        bound = 1 << b.lookup_bits
        table = b.range_table(bound)
        self.bound = bound
        a, y = Ref(b.columns[0]), Ref(b.columns[1])
        c = Ref(b.columns[0], 1)
        sel = Ref(self.selector)
        b.cs.create_gate("multirow_max", [(c - a) * (c - y)],
                         selector=self.selector)
        b.cs.add_lookup("multirow_max/ge_a", inputs=[sel * (c - a + 1)],
                        table=[Ref(table.col)])
        b.cs.add_lookup("multirow_max/ge_b", inputs=[sel * (c - y + 1)],
                        table=[Ref(table.col)])

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        ((x, y),) = ops
        c = max(x.value, y.value)
        if c - min(x.value, y.value) >= self.bound:
            raise ValueError("multirow max operands beyond range table")
        row = b.alloc_row(self.selector)
        next_row = b.alloc_row_unselected()
        b.place(row, 0, x)
        b.place(row, 1, y)
        return [b.new_entry(c, next_row, 0)]


class MultiRowDotGadget(Gadget):
    """Dot product with operands split across two rows.

    Row 0 holds x_1..x_m, row 1 holds y_1..y_m in the first m columns and
    the result in the last column; the constraint spans both rows.
    """

    name = "multirow_dot"
    cells_per_op = 0

    @classmethod
    def slots_per_row(cls, num_cols: int) -> int:
        return 1

    @classmethod
    def terms_per_row(cls, num_cols: int) -> int:
        return num_cols - 1

    @classmethod
    def rows_for_ops(cls, num_ops: int, num_cols: int) -> int:
        return 2 * num_ops

    def _configure(self) -> None:
        b = self.builder
        m = self.terms_per_row(b.num_cols)
        acc: Expression = Constant(0)
        for i in range(m):
            acc = acc + Ref(b.columns[i]) * Ref(b.columns[i], 1)
        z = Ref(b.columns[b.num_cols - 1], 1)
        b.cs.create_gate("multirow_dot", [z - acc], selector=self.selector)

    def assign_row(self, ops: Sequence) -> List[Entry]:
        b = self.builder
        ((xs, ys),) = ops
        m = self.terms_per_row(b.num_cols)
        if len(xs) != len(ys) or len(xs) > m:
            raise ValueError("multirow dot takes up to %d aligned terms" % m)
        row = b.alloc_row(self.selector)
        next_row = b.alloc_row_unselected()
        total = 0
        for i, (x, y) in enumerate(zip(xs, ys)):
            b.place(row, i, x)
            b.place(next_row, i, y)
            total += x.value * y.value
        return [b.new_entry(total, next_row, b.num_cols - 1)]
