"""Arithmetic gadgets (paper Table 4).

Each gadget packs as many independent operations into one row as the
column count allows; unused slots hold unassigned (zero) cells, which
satisfy every constraint trivially.

Fixed-point conventions (scale factor SF = 2^scale_bits):

- Add/Sub/Sum operate on like-scaled values, result keeps the scale.
- Mul/Square/SquaredDiff rescale their raw product back to SF using the
  rounded-division identity ``round(v / SF) = floor((2v + SF) / 2·SF)``,
  enforced with a remainder cell range-checked in ``[0, 2·SF)``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.halo2.expression import Constant, Expression, Ref
from repro.gadgets.base import Gadget
from repro.quantize import div_round
from repro.tensor import Entry


class AddGadget(Gadget):
    """z = x + y, three cells per op."""

    name = "add"
    cells_per_op = 3

    def _configure(self) -> None:
        b = self.builder
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            x, y, z = (Ref(b.columns[3 * slot + i]) for i in range(3))
            constraints.append(x + y - z)
        b.cs.create_gate("add", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        for slot, (x, y) in enumerate(ops):
            b.place(row, 3 * slot, x)
            b.place(row, 3 * slot + 1, y)
            outputs.append(b.new_entry(x.value + y.value, row, 3 * slot + 2))
        return outputs


class SubGadget(Gadget):
    """z = x - y, three cells per op."""

    name = "sub"
    cells_per_op = 3

    def _configure(self) -> None:
        b = self.builder
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            x, y, z = (Ref(b.columns[3 * slot + i]) for i in range(3))
            constraints.append(x - y - z)
        b.cs.create_gate("sub", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        for slot, (x, y) in enumerate(ops):
            b.place(row, 3 * slot, x)
            b.place(row, 3 * slot + 1, y)
            outputs.append(b.new_entry(x.value - y.value, row, 3 * slot + 2))
        return outputs


class _RescaleMixin:
    """Shared helpers for gadgets that rescale a raw product by SF."""

    def _rescale_constraint(self, raw: Expression, z: Ref, r: Ref) -> Expression:
        sf = self.builder.fp.factor
        return 2 * raw + Constant(sf) - Constant(2 * sf) * z - r

    def _rescale_witness(self, raw_value: int):
        sf = self.builder.fp.factor
        z = div_round(raw_value, sf)
        r = 2 * raw_value + sf - 2 * sf * z
        return z, r

    def _remainder_lookup(self, slot_label: str, r_col_idx: int) -> None:
        b = self.builder
        sf = b.fp.factor
        table = b.range_table(2 * sf)
        sel = Ref(self.selector)
        b.cs.add_lookup(
            "%s/%s/rem" % (self.name, slot_label),
            inputs=[sel * (Ref(b.columns[r_col_idx]) + 1)],
            table=[Ref(table.col)],
        )


class MulGadget(Gadget, _RescaleMixin):
    """z = round(x * y / SF), four cells per op (x, y, z, remainder)."""

    name = "mul"
    cells_per_op = 4

    def _configure(self) -> None:
        b = self.builder
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            x, y, z, r = (Ref(b.columns[4 * slot + i]) for i in range(4))
            constraints.append(self._rescale_constraint(x * y, z, r))
            self._remainder_lookup(str(slot), 4 * slot + 3)
        b.cs.create_gate("mul", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        padded = list(ops) + [(Entry(0), Entry(0))] * (
            self.slots_per_row(b.num_cols) - len(ops)
        )
        for slot, (x, y) in enumerate(padded):
            b.place(row, 4 * slot, x)
            b.place(row, 4 * slot + 1, y)
            z, r = self._rescale_witness(x.value * y.value)
            out = b.new_entry(z, row, 4 * slot + 2)
            b.new_entry(r, row, 4 * slot + 3)
            if slot < len(ops):
                outputs.append(out)
        return outputs


class SquareGadget(Gadget, _RescaleMixin):
    """z = round(x^2 / SF), three cells per op (x, z, remainder)."""

    name = "square"
    cells_per_op = 3

    def _configure(self) -> None:
        b = self.builder
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            x, z, r = (Ref(b.columns[3 * slot + i]) for i in range(3))
            constraints.append(self._rescale_constraint(x * x, z, r))
            self._remainder_lookup(str(slot), 3 * slot + 2)
        b.cs.create_gate("square", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        padded = list(ops) + [(Entry(0),)] * (
            self.slots_per_row(b.num_cols) - len(ops)
        )
        for slot, (x,) in enumerate(padded):
            b.place(row, 3 * slot, x)
            z, r = self._rescale_witness(x.value * x.value)
            out = b.new_entry(z, row, 3 * slot + 1)
            b.new_entry(r, row, 3 * slot + 2)
            if slot < len(ops):
                outputs.append(out)
        return outputs


class SquaredDiffGadget(Gadget, _RescaleMixin):
    """z = round((x - y)^2 / SF), four cells per op."""

    name = "squared_diff"
    cells_per_op = 4

    def _configure(self) -> None:
        b = self.builder
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            x, y, z, r = (Ref(b.columns[4 * slot + i]) for i in range(4))
            diff = x - y
            constraints.append(self._rescale_constraint(diff * diff, z, r))
            self._remainder_lookup(str(slot), 4 * slot + 3)
        b.cs.create_gate("squared_diff", constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        padded = list(ops) + [(Entry(0), Entry(0))] * (
            self.slots_per_row(b.num_cols) - len(ops)
        )
        for slot, (x, y) in enumerate(padded):
            b.place(row, 4 * slot, x)
            b.place(row, 4 * slot + 1, y)
            z, r = self._rescale_witness((x.value - y.value) ** 2)
            out = b.new_entry(z, row, 4 * slot + 2)
            b.new_entry(r, row, 4 * slot + 3)
            if slot < len(ops):
                outputs.append(out)
        return outputs


class SumGadget(Gadget):
    """z = sum of up to N-1 values; one op per row (paper §5.2)."""

    name = "sum"
    cells_per_op = 0  # one op spans the whole row

    @classmethod
    def slots_per_row(cls, num_cols: int) -> int:
        return 1

    @classmethod
    def terms_per_row(cls, num_cols: int) -> int:
        return num_cols - 1

    @classmethod
    def rows_for_ops(cls, num_ops: int, num_cols: int) -> int:
        return num_ops

    def _configure(self) -> None:
        b = self.builder
        terms = [Ref(c) for c in b.columns[:-1]]
        z = Ref(b.columns[-1])
        acc: Expression = terms[0]
        for t in terms[1:]:
            acc = acc + t
        b.cs.create_gate("sum", [z - acc], selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        (values,) = ops
        if len(values) > self.terms_per_row(b.num_cols):
            raise ValueError("too many terms for one sum row")
        row = b.alloc_row(self.selector)
        total = 0
        for i, x in enumerate(values):
            b.place(row, i, x)
            total += x.value
        return [b.new_entry(total, row, b.num_cols - 1)]

    def sum_vector(self, values: Sequence[Entry]) -> Entry:
        """Sum a vector of any length by chaining partial sums."""
        terms = self.terms_per_row(self.builder.num_cols)
        work = list(values)
        while len(work) > 1:
            partials = []
            for start in range(0, len(work), terms):
                chunk = work[start : start + terms]
                if len(chunk) == 1:
                    partials.append(chunk[0])
                else:
                    partials.extend(self.assign_row([chunk]))
            work = partials
        return work[0]


class DivRoundConstGadget(Gadget):
    """z = round(x / c) for a circuit constant c; three cells per op."""

    name = "div_round_const"
    cells_per_op = 3

    def __init__(self, builder, divisor: int):
        if divisor <= 0:
            raise ValueError("divisor must be positive")
        self.divisor = divisor
        super().__init__(builder)

    def _configure(self) -> None:
        b = self.builder
        c = self.divisor
        table = b.range_table(2 * c)
        sel = Ref(self.selector)
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            x, z, r = (Ref(b.columns[3 * slot + i]) for i in range(3))
            constraints.append(2 * x + Constant(c) - Constant(2 * c) * z - r)
            b.cs.add_lookup(
                "div_round_const/%d/%d/rem" % (c, slot),
                inputs=[sel * (r + 1)],
                table=[Ref(table.col)],
            )
        b.cs.create_gate("div_round_const/%d" % c, constraints, selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        c = self.divisor
        row = b.alloc_row(self.selector)
        outputs = []
        padded = list(ops) + [(Entry(0),)] * (
            self.slots_per_row(b.num_cols) - len(ops)
        )
        for slot, (x,) in enumerate(padded):
            b.place(row, 3 * slot, x)
            z = div_round(x.value, c)
            r = 2 * x.value + c - 2 * c * z
            out = b.new_entry(z, row, 3 * slot + 1)
            b.new_entry(r, row, 3 * slot + 2)
            if slot < len(ops):
                outputs.append(out)
        return outputs


class ScaleConstGadget(Gadget):
    """z = c * x exactly (no rescale) for a circuit constant c; two cells."""

    name = "scale_const"
    cells_per_op = 2

    def __init__(self, builder, factor: int):
        self.factor = factor
        super().__init__(builder)

    def _configure(self) -> None:
        b = self.builder
        constraints = []
        for slot in range(self.slots_per_row(b.num_cols)):
            x, z = (Ref(b.columns[2 * slot + i]) for i in range(2))
            constraints.append(Constant(self.factor) * x - z)
        b.cs.create_gate("scale_const/%d" % self.factor, constraints,
                         selector=self.selector)

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        b = self.builder
        row = b.alloc_row(self.selector)
        outputs = []
        for slot, (x,) in enumerate(ops):
            b.place(row, 2 * slot, x)
            outputs.append(b.new_entry(self.factor * x.value, row, 2 * slot + 1))
        return outputs
