"""Gadget base class and registry.

A gadget is a single-row constraint template.  It declares its selector
and constraints once per circuit (``configure``), knows how many logical
operations fit in one row at a given column count (``slots_per_row`` —
the quantity the physical-layout simulator uses to count rows), and can
lay out one row of operations (``assign_row``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Type

from repro.tensor import Entry

if TYPE_CHECKING:
    from repro.gadgets.builder import CircuitBuilder

#: name -> gadget class, for the optimizer's logical-layout enumeration.
gadget_registry: Dict[str, Type["Gadget"]] = {}


class Gadget:
    """Base class for single-row gadgets."""

    #: Registry key; subclasses must override.
    name = "abstract"
    #: Number of grid cells one logical operation consumes.
    cells_per_op = 0

    def __init__(self, builder: "CircuitBuilder"):
        self.builder = builder
        self.selector = builder.cs.selector()
        self._configure()

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.name != "abstract":
            gadget_registry[cls.name] = cls

    # -- static shape (used by the physical-layout simulator) ----------------

    @classmethod
    def slots_per_row(cls, num_cols: int) -> int:
        """How many logical operations fit in one row of ``num_cols``."""
        if cls.cells_per_op <= 0:
            raise NotImplementedError
        return max(num_cols // cls.cells_per_op, 0)

    @classmethod
    def rows_for_ops(cls, num_ops: int, num_cols: int) -> int:
        """Rows needed to lay out ``num_ops`` operations."""
        slots = cls.slots_per_row(num_cols)
        if slots == 0:
            raise ValueError(
                "%s needs at least %d columns, got %d"
                % (cls.name, cls.cells_per_op, num_cols)
            )
        return -(-num_ops // slots)

    # -- circuit-time behaviour ------------------------------------------------

    def _configure(self) -> None:
        """Declare this gadget's gate(s) and lookup(s); called once."""
        raise NotImplementedError

    def assign_row(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        """Lay out up to ``slots_per_row`` operations in a fresh row.

        ``ops`` is a list of per-op input entry tuples; returns one output
        entry per op.
        """
        raise NotImplementedError

    def assign_many(self, ops: Sequence[Sequence[Entry]]) -> List[Entry]:
        """Lay out any number of operations, filling rows greedily."""
        slots = self.slots_per_row(self.builder.num_cols)
        outputs: List[Entry] = []
        for start in range(0, len(ops), slots):
            outputs.extend(self.assign_row(ops[start : start + slots]))
        return outputs
