"""Typed exception taxonomy for the proving pipeline.

Every failure the pipeline can surface maps to one class here, so
callers (the supervisor, the CLI, the chaos harness) can distinguish
*what* went wrong and *where* without parsing messages:

==========================  ==================================================
class                       raised when
==========================  ==================================================
``SpecError``               a model spec is malformed or references an
                            unknown model/layer
``QuantizationRangeError``  a value cannot be represented in the fixed-point
                            format (overflow, non-finite, bad scale)
``LayoutError``             a circuit layout is infeasible (too few columns,
                            too many rows); ``LayoutInfeasible`` subclasses it
``ProvingError``            the witness cannot satisfy the circuit, or a
                            prover phase failed permanently
``FreivaldsCheckError``     the Freivalds matmul challenge failed — the
                            supervisor degrades to the direct-matmul layout
``CacheCorruptionError``    a cached artifact (pk cache entry, checkpoint
                            stage file) fails its checksum
``ProofFormatError``        a serialized proof/artifact violates the wire
                            format (bad magic, truncation, out-of-range)
``EnvelopeError``           a proof envelope is malformed; subtypes name the
                            violation: ``EnvelopeSchemaError`` (wrong schema
                            id / unknown scheme), ``EnvelopeTruncatedError``
                            (data ends mid-field), ``EnvelopeCapError`` (a
                            count or size exceeds its hard DoS cap), and
                            ``EnvelopeChecksumError`` (integrity mismatch)
``VerificationFailure``     a structurally valid proof does not verify
``RegistryError``           the verifying-key registry cannot serve a
                            request; ``UnknownVerifyingKeyError`` (no entry
                            for a vk hash) subclasses it
``CheckpointError``         a checkpoint directory cannot be written/resumed
``DeadlineExceeded``        a supervised phase overran its deadline
``ServiceError``            the proving service cannot accept or complete a
                            request; ``ServiceOverloadedError`` (queue full,
                            backpressure), ``ServiceShutdownError`` (closed),
                            ``ServiceTimeoutError`` (a live connection's reply
                            overran the client's budget), and
                            ``WorkerCrashError`` (a batch exhausted its
                            re-dispatch budget by killing workers) subclass it
==========================  ==================================================

Each error carries the originating pipeline ``phase`` plus optional
``layer`` / ``region`` attribution (the synthesis region map from
``CircuitBuilder.regions``) and free-form ``context`` key/values; all of
it is rendered into ``str(exc)`` so a bare log line is already useful.
Most classes also subclass ``ValueError`` (or ``KeyError`` for lookup
misses), so pre-taxonomy callers that caught built-ins keep working.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "ResilienceError",
    "SpecError",
    "UnknownNameError",
    "QuantizationRangeError",
    "LayoutError",
    "ProvingError",
    "FreivaldsCheckError",
    "CacheCorruptionError",
    "ProofFormatError",
    "EnvelopeError",
    "EnvelopeSchemaError",
    "EnvelopeTruncatedError",
    "EnvelopeCapError",
    "EnvelopeChecksumError",
    "VerificationFailure",
    "RegistryError",
    "UnknownVerifyingKeyError",
    "CheckpointError",
    "DeadlineExceeded",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceShutdownError",
    "ServiceTimeoutError",
    "WorkerCrashError",
    "region_at",
]


class ResilienceError(Exception):
    """Base of the taxonomy: a message plus phase/layer/region context."""

    #: Phase attributed when the raise site does not pass one explicitly.
    default_phase = ""

    def __init__(self, message: str, *, phase: Optional[str] = None,
                 layer: Optional[str] = None, region: Optional[str] = None,
                 **context: Any):
        super().__init__(message)
        self.message = message
        self.phase = phase if phase is not None else self.default_phase
        self.layer = layer
        self.region = region
        self.context: Dict[str, Any] = context

    def with_context(self, phase: Optional[str] = None,
                     layer: Optional[str] = None,
                     region: Optional[str] = None,
                     **context: Any) -> "ResilienceError":
        """Fill in attribution blanks (never overwrites existing values)."""
        if phase and not self.phase:
            self.phase = phase
        if layer and self.layer is None:
            self.layer = layer
        if region and self.region is None:
            self.region = region
        for key, value in context.items():
            self.context.setdefault(key, value)
        return self

    def attribution(self) -> Dict[str, Any]:
        """The structured context (for logs and the chaos report)."""
        out: Dict[str, Any] = {"error": type(self).__name__}
        if self.phase:
            out["phase"] = self.phase
        if self.layer is not None:
            out["layer"] = self.layer
        if self.region is not None:
            out["region"] = self.region
        out.update(self.context)
        return out

    def __str__(self) -> str:
        parts = []
        if self.phase:
            parts.append("phase=%s" % self.phase)
        if self.layer is not None:
            parts.append("layer=%s" % self.layer)
        if self.region is not None:
            parts.append("region=%s" % self.region)
        parts.extend("%s=%s" % (k, v) for k, v in self.context.items())
        if parts:
            return "%s [%s]" % (self.message, " ".join(parts))
        return self.message


class SpecError(ResilienceError, ValueError):
    """The model spec is malformed (bad graph, missing inputs/outputs)."""

    default_phase = "spec"


class UnknownNameError(SpecError, KeyError):
    """A lookup by name missed (unknown model, layer kind, gadget)."""


class QuantizationRangeError(ResilienceError, ValueError):
    """A value cannot be represented in the fixed-point format."""

    default_phase = "quantize"


class LayoutError(ResilienceError, ValueError):
    """A circuit layout is invalid or infeasible for the given grid."""

    default_phase = "layout"


class ProvingError(ResilienceError, ValueError):
    """The witness cannot satisfy the circuit, or proving failed."""

    default_phase = "prove"


class FreivaldsCheckError(ProvingError):
    """The Freivalds matmul challenge failed; direct matmul still works."""

    default_phase = "synthesize"


class CacheCorruptionError(ResilienceError, ValueError):
    """A cached artifact failed its integrity checksum."""

    default_phase = "keygen"


class ProofFormatError(ResilienceError, ValueError):
    """A serialized proof or artifact violates the wire format."""

    default_phase = "verify"


class EnvelopeError(ProofFormatError):
    """A proof envelope is malformed.

    Base of the envelope rejection taxonomy; subclasses name the exact
    violation so the verify service can count rejections by cause.
    Subclasses ``ProofFormatError`` (hence ``ValueError``), so callers
    that already catch format errors reject envelopes too.
    """

    default_phase = "envelope"


class EnvelopeSchemaError(EnvelopeError):
    """The schema id or scheme name is not one this decoder speaks."""


class EnvelopeTruncatedError(EnvelopeError):
    """The envelope ends mid-field — bytes promised by a length prefix
    or fixed-width slot are missing."""


class EnvelopeCapError(EnvelopeError):
    """A declared count or size exceeds its hard DoS cap.

    Raised *before* any allocation sized by the offending value, so a
    hostile envelope cannot make the decoder do work proportional to a
    number the attacker wrote.
    """


class EnvelopeChecksumError(EnvelopeError):
    """The trailing integrity checksum does not match the payload."""


class VerificationFailure(ResilienceError):
    """A well-formed proof was rejected by the verifier."""

    default_phase = "verify"


class RegistryError(ResilienceError, ValueError):
    """The verifying-key registry cannot serve a request."""

    default_phase = "registry"


class UnknownVerifyingKeyError(RegistryError, KeyError):
    """No registry entry exists for the requested verifying-key hash."""


class CheckpointError(ResilienceError):
    """A checkpoint directory cannot be written, read, or resumed."""

    default_phase = "checkpoint"


class DeadlineExceeded(ResilienceError):
    """A supervised phase overran its wall-clock deadline."""


class ServiceError(ResilienceError):
    """The proving service could not accept or complete a request."""

    default_phase = "serve"


class ServiceOverloadedError(ServiceError):
    """The bounded request queue is full — backpressure, try again later."""


class ServiceShutdownError(ServiceError):
    """The service is shut down and no longer accepts requests."""


class ServiceTimeoutError(ServiceError):
    """A client-side wait on the service overran its budget mid-exchange.

    Distinct from the silent-close edge (the peer vanished) — here the
    connection is alive but the reply did not finish arriving in time.
    """


class WorkerCrashError(ServiceError):
    """A prover worker process died and its batch exhausted re-dispatch.

    A single crash is recovered transparently (the in-flight batch is
    re-dispatched to another worker); this surfaces only when the same
    batch kills every worker it touches — a poison batch."""


def region_at(regions: List[Any], row: int) -> Optional[Any]:
    """The innermost synthesis region covering ``row``.

    ``regions`` is ``CircuitBuilder.regions`` (ordered outer-first; inner
    regions appear later), so the *last* region containing the row is the
    most specific attribution — the same rule ``repro.halo2.mock`` uses.
    Returns the :class:`~repro.gadgets.builder.Region` (or ``None``).
    """
    best = None
    for region in regions:
        if region.start <= row < region.end:
            best = region
    return best
