"""Resilience subsystem: typed errors, fault injection, supervised runs.

This package makes the proving pipeline survivable: a typed exception
taxonomy (:mod:`~repro.resilience.errors`), visible recovery counters
(:mod:`~repro.resilience.events`), deterministic fault injection
(:mod:`~repro.resilience.faults`), a supervised phase runner with
retries/deadlines/degradation (:mod:`~repro.resilience.supervisor`),
stage checkpointing (:mod:`~repro.resilience.checkpoint`), and a
proof-mutation fuzzer (:mod:`~repro.resilience.fuzz`).

Only the leaf modules (errors / events / faults) are imported eagerly:
they are referenced from hot modules like ``repro.perf.parallel`` and
must not pull the circuit stack into the import graph.  Import
``repro.resilience.supervisor`` / ``checkpoint`` / ``fuzz`` explicitly.
"""

from repro.resilience import events, faults
from repro.resilience.errors import (
    CacheCorruptionError,
    CheckpointError,
    DeadlineExceeded,
    FreivaldsCheckError,
    LayoutError,
    ProofFormatError,
    ProvingError,
    QuantizationRangeError,
    ResilienceError,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
    SpecError,
    UnknownNameError,
    VerificationFailure,
)

__all__ = [
    "CacheCorruptionError",
    "CheckpointError",
    "DeadlineExceeded",
    "FreivaldsCheckError",
    "LayoutError",
    "ProofFormatError",
    "ProvingError",
    "QuantizationRangeError",
    "ResilienceError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceShutdownError",
    "SpecError",
    "UnknownNameError",
    "VerificationFailure",
    "events",
    "faults",
]
