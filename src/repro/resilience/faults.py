"""Deterministic fault injection for exercising recovery paths.

A :class:`FaultPlan` arms named *sites* in the pipeline; each site calls
:func:`maybe_inject` and, when armed, raises :class:`InjectedFault` on a
deterministic schedule.  The instrumented sites are:

==============  ==============================================================
site            where it fires
==============  ==============================================================
``worker``      ``repro.perf.parallel.parallel_map`` before spawning the
                worker pool (simulates a dead/unspawnable pool)
``cache_read``  ``ProvingKeyCache.get_or_create`` on a cache hit (simulates
                a corrupted cache entry; the checksum check then fails)
``ntt``         ``EvaluationDomain.lagrange_to_coeff_vec`` (transient
                compute fault inside a prover phase)
``transcript``  ``Transcript.challenge_scalar`` (transient fault in the
                Fiat–Shamir transcript hash)
``disk_write``  ``CheckpointStore`` stage writes (simulates a failed disk
                write; the write is retried)
``freivalds``   the Freivalds matmul synthesis (simulates a challenge
                failure; the supervisor degrades to direct matmul)
==============  ==============================================================

Plans are parsed from a spec string (the ``ZKML_FAULTS`` environment
variable, or ``zkml chaos``)::

    ZKML_FAULTS="ntt"            # fail the first ntt call, succeed after
    ZKML_FAULTS="ntt:3"          # fail the first three calls
    ZKML_FAULTS="cache_read@1"   # let one call pass, then fail once
    ZKML_FAULTS="ntt:2,worker"   # several sites at once

The schedule is purely counter-based — same plan, same call sequence,
same failures — so every chaos run is reproducible.  ``InjectedFault`` is
deliberately **not** part of the :mod:`repro.resilience.errors` taxonomy:
if one escapes to the top of the pipeline un-recovered and un-wrapped,
the chaos harness flags the run as a failed recovery.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Optional

__all__ = [
    "FAULT_SITES",
    "ENV_VAR",
    "InjectedFault",
    "FaultPlan",
    "active_plan",
    "install",
    "uninstall",
    "use_faults",
    "maybe_inject",
]

#: Every instrumented site name (the chaos matrix iterates these).
FAULT_SITES = ("worker", "cache_read", "ntt", "transcript", "disk_write",
               "freivalds")

#: Environment variable holding the default fault spec.
ENV_VAR = "ZKML_FAULTS"


class InjectedFault(RuntimeError):
    """A deliberately injected failure.

    ``transient`` faults model conditions a retry can clear (the plan
    stops firing after ``times`` occurrences); the supervisor retries
    them and wraps the survivors in typed errors.
    """

    transient = True

    def __init__(self, site: str, occurrence: int):
        super().__init__("injected fault at site %r (occurrence %d)"
                         % (site, occurrence))
        self.site = site
        self.occurrence = occurrence


class _SiteState:
    __slots__ = ("times", "after", "seen", "fired")

    def __init__(self, times: int, after: int):
        self.times = times
        self.after = after
        self.seen = 0
        self.fired = 0


class FaultPlan:
    """Armed fault sites with deterministic fire schedules."""

    def __init__(self, sites: Dict[str, "_SiteState"], spec: str = ""):
        self.sites = sites
        self.spec = spec

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``site[:times][@after]`` terms, comma-separated."""
        sites: Dict[str, _SiteState] = {}
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            after = 0
            if "@" in term:
                term, after_text = term.split("@", 1)
                after = int(after_text)
            times = 1
            if ":" in term:
                term, times_text = term.split(":", 1)
                times = int(times_text)
            site = term.strip()
            if site not in FAULT_SITES:
                raise ValueError(
                    "unknown fault site %r (known: %s)"
                    % (site, ", ".join(FAULT_SITES))
                )
            sites[site] = _SiteState(times=times, after=after)
        return cls(sites, spec=spec)

    def fire(self, site: str) -> None:
        state = self.sites.get(site)
        if state is None:
            return
        state.seen += 1
        if state.seen > state.after and state.fired < state.times:
            state.fired += 1
            raise InjectedFault(site, state.seen)

    def report(self) -> Dict[str, Dict[str, int]]:
        """Per-site (seen, fired) counts — did the plan actually trigger?"""
        return {
            site: {"seen": state.seen, "fired": state.fired,
                   "times": state.times}
            for site, state in self.sites.items()
        }


_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _PLAN


def install(plan) -> FaultPlan:
    """Install a plan (or spec string) process-wide; returns the plan."""
    global _PLAN, _ENV_CHECKED
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _PLAN = plan
    _ENV_CHECKED = True
    return plan


def uninstall() -> None:
    """Remove the installed plan (``maybe_inject`` becomes a no-op)."""
    global _PLAN
    _PLAN = None


@contextmanager
def use_faults(spec):
    """Temporarily install a fault plan; restores the previous one."""
    previous = _PLAN
    plan = install(spec)
    try:
        yield plan
    finally:
        install(previous) if previous is not None else uninstall()


def maybe_inject(site: str) -> None:
    """Raise :class:`InjectedFault` if a plan arms ``site``.

    The fast path — no plan installed — is one global read, so the
    instrumented call sites cost nothing in production.  The first call
    with no plan installed reads ``ZKML_FAULTS`` from the environment.
    """
    global _ENV_CHECKED, _PLAN
    plan = _PLAN
    if plan is None:
        if _ENV_CHECKED:
            return
        _ENV_CHECKED = True
        spec = os.environ.get(ENV_VAR)
        if not spec:
            return
        plan = _PLAN = FaultPlan.parse(spec)
    plan.fire(site)
