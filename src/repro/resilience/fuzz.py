"""Proof-mutation fuzzing: mutated proofs must be *cleanly* rejected.

Starting from a known-good ``(vk, proof, instance, scheme)`` tuple, each
iteration applies a seeded random mutation to the serialized proof bytes
(bit flip, truncation, insertion, range zeroing) — or tampers with the
public inputs — and asserts the hardened verifier rejects it with a
typed error:

- :class:`~repro.resilience.errors.ProofFormatError` when the mutation
  breaks the wire format (deserialization or shape validation), or
- :class:`~repro.resilience.errors.VerificationFailure` when the
  mutated proof parses but fails verification.

Any *other* exception is an **escape** — an unhandled crash path in the
verifier — and any mutation that still verifies is an **acceptance**
(soundness alarm).  Both fail :attr:`FuzzReport.ok`.  ``zkml chaos
--fuzz N`` and the CI chaos-smoke job run this loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.halo2.proof import proof_from_bytes, proof_to_bytes
from repro.halo2.verifier import verify_proof_strict
from repro.resilience.errors import ProofFormatError, VerificationFailure

__all__ = ["FuzzReport", "run_proof_fuzz"]


@dataclass
class FuzzReport:
    """Outcome of one fuzzing session."""

    iterations: int = 0
    rejected_format: int = 0
    rejected_verify: int = 0
    #: Mutations the verifier still accepted (soundness alarm).
    accepted: List[str] = field(default_factory=list)
    #: Mutations that crashed with an untyped exception.
    escapes: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.accepted and not self.escapes

    def summary(self) -> str:
        line = ("%d mutations: %d rejected as malformed, %d rejected by "
                "verification, %d accepted, %d escaped"
                % (self.iterations, self.rejected_format,
                   self.rejected_verify, len(self.accepted),
                   len(self.escapes)))
        for what, exc_type, msg in self.escapes[:5]:
            line += "\n  ESCAPE %s: %s: %s" % (what, exc_type, msg)
        for what in self.accepted[:5]:
            line += "\n  ACCEPTED %s" % what
        return line


def _mutate(data: bytes, rng: random.Random) -> Tuple[bytes, str]:
    """One random mutation of a byte string; never returns it unchanged."""
    kind = rng.randrange(4)
    if kind == 0:  # flip one byte (guaranteed different)
        pos = rng.randrange(len(data))
        delta = rng.randrange(1, 256)
        out = bytearray(data)
        out[pos] ^= delta
        return bytes(out), "flip@%d^%02x" % (pos, delta)
    if kind == 1:  # truncate
        pos = rng.randrange(len(data))
        return data[:pos], "truncate@%d" % pos
    if kind == 2:  # insert junk
        pos = rng.randrange(len(data) + 1)
        junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 9)))
        return data[:pos] + junk + data[pos:], "insert@%d+%d" % (pos, len(junk))
    # zero a range (skip if it is already all zeros)
    pos = rng.randrange(len(data))
    length = min(rng.randrange(1, 65), len(data) - pos)
    if data[pos:pos + length] == b"\x00" * length:
        out = bytearray(data)
        out[pos] ^= 0xFF
        return bytes(out), "flip@%d^ff" % pos
    return (data[:pos] + b"\x00" * length + data[pos + length:],
            "zero@%d+%d" % (pos, length))


def _tamper_instance(instance, rng: random.Random):
    """Flip one public-input value (a well-formed but wrong instance)."""
    tampered = [list(col) for col in instance]
    candidates = [(i, j) for i, col in enumerate(tampered)
                  for j, v in enumerate(col) if v]
    if not candidates:
        candidates = [(0, 0)]
    i, j = candidates[rng.randrange(len(candidates))]
    tampered[i][j] = int(tampered[i][j]) + 1 + rng.randrange(7)
    return tampered, "instance[%d][%d]" % (i, j)


def run_proof_fuzz(vk, proof, instance, scheme, iterations: int = 200,
                   seed: int = 0) -> FuzzReport:
    """Mutate the proof ``iterations`` times; every mutant must be
    rejected with ``ProofFormatError`` or ``VerificationFailure``."""
    rng = random.Random(seed)
    baseline = proof_to_bytes(proof)
    report = FuzzReport()
    for i in range(iterations):
        if i % 10 == 9:
            mutated_bytes, what = baseline, None
            test_instance, tag = _tamper_instance(instance, rng)
            what = "tamper:%s" % tag
        else:
            mutated_bytes, what = _mutate(baseline, rng)
            test_instance = instance
        report.iterations += 1
        try:
            mutant = proof_from_bytes(mutated_bytes)
        except ProofFormatError:
            report.rejected_format += 1
            continue
        except Exception as exc:  # noqa: BLE001 — parse crash: an escape
            report.escapes.append((what, type(exc).__name__, str(exc)[:120]))
            continue
        try:
            verify_proof_strict(vk, mutant, test_instance, scheme)
        except ProofFormatError:
            report.rejected_format += 1
        except VerificationFailure:
            report.rejected_verify += 1
        except Exception as exc:  # noqa: BLE001 — verifier crash: an escape
            report.escapes.append((what, type(exc).__name__, str(exc)[:120]))
        else:
            report.accepted.append(what)
    return report
