"""Proof-mutation fuzzing: mutated proofs must be *cleanly* rejected.

Starting from a known-good ``(vk, proof, instance, scheme)`` tuple, each
iteration applies a seeded random mutation to the serialized proof bytes
(bit flip, truncation, insertion, range zeroing) — or tampers with the
public inputs — and asserts the hardened verifier rejects it with a
typed error:

- :class:`~repro.resilience.errors.ProofFormatError` when the mutation
  breaks the wire format (deserialization or shape validation), or
- :class:`~repro.resilience.errors.VerificationFailure` when the
  mutated proof parses but fails verification.

Any *other* exception is an **escape** — an unhandled crash path in the
verifier — and any mutation that still verifies is an **acceptance**
(soundness alarm).  Both fail :attr:`FuzzReport.ok`.  ``zkml chaos
--fuzz N`` and the CI chaos-smoke job run this loop.

:func:`run_envelope_fuzz` is the same discipline one trust layer up: it
mutates serialized **proof envelopes** (truncation, byte flips,
checksum tamper, schema-id confusion, count-cap overflow with a *fixed-
up* checksum, and well-formed instance tampering) and asserts whatever
verification surface it is pointed at — the in-process decoder or a
live ``zkml verify-serve`` socket — rejects every mutant with a typed
error and accepts none.  The checksum-fixup mutations matter: a hostile
sender can always compute a valid checksum over a malicious body, so
the caps must reject before the checksum ever gets a vote.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.halo2.proof import proof_from_bytes, proof_to_bytes
from repro.halo2.verifier import verify_proof_strict
from repro.resilience.errors import ProofFormatError, VerificationFailure

__all__ = ["FuzzReport", "run_proof_fuzz", "run_envelope_fuzz",
           "local_envelope_checker"]


@dataclass
class FuzzReport:
    """Outcome of one fuzzing session."""

    iterations: int = 0
    rejected_format: int = 0
    rejected_verify: int = 0
    #: Mutations the verifier still accepted (soundness alarm).
    accepted: List[str] = field(default_factory=list)
    #: Mutations that crashed with an untyped exception.
    escapes: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.accepted and not self.escapes

    def summary(self) -> str:
        line = ("%d mutations: %d rejected as malformed, %d rejected by "
                "verification, %d accepted, %d escaped"
                % (self.iterations, self.rejected_format,
                   self.rejected_verify, len(self.accepted),
                   len(self.escapes)))
        for what, exc_type, msg in self.escapes[:5]:
            line += "\n  ESCAPE %s: %s: %s" % (what, exc_type, msg)
        for what in self.accepted[:5]:
            line += "\n  ACCEPTED %s" % what
        return line


def _mutate(data: bytes, rng: random.Random) -> Tuple[bytes, str]:
    """One random mutation of a byte string; never returns it unchanged."""
    kind = rng.randrange(4)
    if kind == 0:  # flip one byte (guaranteed different)
        pos = rng.randrange(len(data))
        delta = rng.randrange(1, 256)
        out = bytearray(data)
        out[pos] ^= delta
        return bytes(out), "flip@%d^%02x" % (pos, delta)
    if kind == 1:  # truncate
        pos = rng.randrange(len(data))
        return data[:pos], "truncate@%d" % pos
    if kind == 2:  # insert junk
        pos = rng.randrange(len(data) + 1)
        junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 9)))
        return data[:pos] + junk + data[pos:], "insert@%d+%d" % (pos, len(junk))
    # zero a range (skip if it is already all zeros)
    pos = rng.randrange(len(data))
    length = min(rng.randrange(1, 65), len(data) - pos)
    if data[pos:pos + length] == b"\x00" * length:
        out = bytearray(data)
        out[pos] ^= 0xFF
        return bytes(out), "flip@%d^ff" % pos
    return (data[:pos] + b"\x00" * length + data[pos + length:],
            "zero@%d+%d" % (pos, length))


def _tamper_instance(instance, rng: random.Random):
    """Flip one public-input value (a well-formed but wrong instance)."""
    tampered = [list(col) for col in instance]
    candidates = [(i, j) for i, col in enumerate(tampered)
                  for j, v in enumerate(col) if v]
    if not candidates:
        candidates = [(0, 0)]
    i, j = candidates[rng.randrange(len(candidates))]
    tampered[i][j] = int(tampered[i][j]) + 1 + rng.randrange(7)
    return tampered, "instance[%d][%d]" % (i, j)


def run_proof_fuzz(vk, proof, instance, scheme, iterations: int = 200,
                   seed: int = 0) -> FuzzReport:
    """Mutate the proof ``iterations`` times; every mutant must be
    rejected with ``ProofFormatError`` or ``VerificationFailure``."""
    rng = random.Random(seed)
    baseline = proof_to_bytes(proof)
    report = FuzzReport()
    for i in range(iterations):
        if i % 10 == 9:
            mutated_bytes, what = baseline, None
            test_instance, tag = _tamper_instance(instance, rng)
            what = "tamper:%s" % tag
        else:
            mutated_bytes, what = _mutate(baseline, rng)
            test_instance = instance
        report.iterations += 1
        try:
            mutant = proof_from_bytes(mutated_bytes)
        except ProofFormatError:
            report.rejected_format += 1
            continue
        except Exception as exc:  # noqa: BLE001 — parse crash: an escape
            report.escapes.append((what, type(exc).__name__, str(exc)[:120]))
            continue
        try:
            verify_proof_strict(vk, mutant, test_instance, scheme)
        except ProofFormatError:
            report.rejected_format += 1
        except VerificationFailure:
            report.rejected_verify += 1
        except Exception as exc:  # noqa: BLE001 — verifier crash: an escape
            report.escapes.append((what, type(exc).__name__, str(exc)[:120]))
        else:
            report.accepted.append(what)
    return report


# -- envelope-level fuzzing ---------------------------------------------------

#: Error class names counted as "rejected as malformed" by the envelope
#: fuzz loop (the decoder taxonomy plus the registry's lookup misses —
#: a mutated vk hash legitimately lands on an unknown key).
_FORMAT_REJECTIONS = frozenset({
    "EnvelopeError", "EnvelopeSchemaError", "EnvelopeTruncatedError",
    "EnvelopeCapError", "EnvelopeChecksumError", "ProofFormatError",
    "UnknownVerifyingKeyError", "RegistryError",
})

_CHECKSUM_BYTES = 16


def _fix_checksum(body: bytes) -> bytes:
    """Re-stamp a mutated envelope body with a *valid* trailing checksum
    — the adversarial shape: integrity passes, content is hostile."""
    return body + hashlib.blake2b(body,
                                  digest_size=_CHECKSUM_BYTES).digest()


def _mutate_envelope(data: bytes, rng: random.Random,
                     counts_offset: int) -> Tuple[bytes, str]:
    """One seeded envelope mutation; ``counts_offset`` is the byte
    offset of the instance-column-count field (header sizes vary with
    the model name, so the caller measures it once)."""
    kind = rng.randrange(6)
    if kind == 0:  # truncation
        pos = rng.randrange(len(data))
        return data[:pos], "truncate@%d" % pos
    if kind == 1:  # random byte flip (body or checksum)
        pos = rng.randrange(len(data))
        delta = rng.randrange(1, 256)
        out = bytearray(data)
        out[pos] ^= delta
        return bytes(out), "flip@%d^%02x" % (pos, delta)
    if kind == 2:  # checksum tamper: flip inside the trailing digest
        pos = len(data) - 1 - rng.randrange(_CHECKSUM_BYTES)
        out = bytearray(data)
        out[pos] ^= rng.randrange(1, 256)
        return bytes(out), "checksum-tamper@%d" % pos
    if kind == 3:  # schema-id confusion, checksum fixed up to be valid
        out = bytearray(data[: len(data) - _CHECKSUM_BYTES])
        # the schema string starts at offset 1; flip its version digit
        out[1 + out[0] - 1] = ord("0") + rng.randrange(2, 10)
        return _fix_checksum(bytes(out)), "schema-confusion"
    if kind == 4:  # count-cap overflow: forge a huge count, valid checksum
        out = bytearray(data[: len(data) - _CHECKSUM_BYTES])
        forged = (1 << 31) | rng.randrange(1 << 30)
        out[counts_offset : counts_offset + 4] = forged.to_bytes(4, "little")
        return _fix_checksum(bytes(out)), "count-overflow=%d" % forged
    # flip a byte in the body, checksum fixed up: the envelope layer
    # passes and the *verification* layer must reject.  Flips land only
    # in regions the proof statement binds (vk hash, instance values,
    # proof bytes) — the model-name/config-digest metadata is bound by
    # the registry cross-check, which the in-process checker lacks.
    out = bytearray(data[: len(data) - _CHECKSUM_BYTES])
    vk_hash_start = counts_offset - 48  # 32B vk hash + 16B config digest
    pos = vk_hash_start + rng.randrange(len(out) - vk_hash_start - 16)
    if counts_offset - 16 <= pos < counts_offset:
        pos += 16  # skip the config digest (registry-bound, not proof-bound)
    out[pos] ^= rng.randrange(1, 256)
    return _fix_checksum(bytes(out)), "body-flip@%d" % pos


def local_envelope_checker(vk, caps=None) -> Callable[[bytes], Dict]:
    """An in-process verdict function for :func:`run_envelope_fuzz`.

    Mirrors what one envelope's verdict looks like coming back from
    ``zkml verify-serve``: ``{"ok": bool, "error": <class name>}``.
    """
    from repro.envelope import DEFAULT_CAPS, decode_envelope
    from repro.envelope.verify import verify_envelope
    from repro.resilience.errors import ResilienceError

    effective_caps = caps if caps is not None else DEFAULT_CAPS

    def check(data: bytes) -> Dict:
        try:
            env = decode_envelope(data, caps=effective_caps)
            verify_envelope(env, vk, strict=True)
        except ResilienceError as exc:
            return {"ok": False, "error": type(exc).__name__}
        return {"ok": True}

    return check


def run_envelope_fuzz(envelope_bytes: bytes,
                      check: Callable[[bytes], Dict],
                      iterations: int = 200, seed: int = 0,
                      tamper_instance_every: int = 10) -> FuzzReport:
    """Mutate a known-good envelope ``iterations`` times; every mutant
    must come back rejected with a typed error.

    ``check(mutant_bytes) -> {"ok": bool, "error": str, ...}`` is the
    verification surface under test — :func:`local_envelope_checker`
    in-process, or a closure over
    :func:`repro.serve.client.verify_request` for a live socket.  A
    ``check`` that *raises* is an escape (the surface leaked a
    traceback); a verdict naming a non-taxonomy error is an escape too.
    Every ``tamper_instance_every``-th iteration re-encodes the envelope
    with one public input bumped — well-formed, wrong statement — which
    must be rejected by *verification*, not formatting.
    """
    from repro.envelope import decode_envelope

    pristine = decode_envelope(bytes(envelope_bytes))
    # offset of the instance-column-count u32 (after the three
    # length-prefixed strings and the two fixed digests)
    counts_offset = (1 + len(pristine.schema.encode())
                     + 1 + len(pristine.scheme_name.encode())
                     + 1 + len(pristine.model.encode()) + 32 + 16)
    rng = random.Random(seed)
    report = FuzzReport()
    for i in range(iterations):
        if tamper_instance_every and i % tamper_instance_every == \
                tamper_instance_every - 1:
            tampered, tag = _tamper_instance(pristine.instance, rng)
            mutant_env = type(pristine)(
                scheme_name=pristine.scheme_name, model=pristine.model,
                vk_hash=pristine.vk_hash,
                config_digest=pristine.config_digest,
                instance=tampered, proof_bytes=pristine.proof_bytes)
            mutant, what = mutant_env.encode(), "tamper:%s" % tag
        else:
            mutant, what = _mutate_envelope(bytes(envelope_bytes), rng,
                                            counts_offset)
        report.iterations += 1
        try:
            verdict = check(mutant)
        except Exception as exc:  # noqa: BLE001 — the surface leaked an exception
            report.escapes.append((what, type(exc).__name__, str(exc)[:120]))
            continue
        if verdict.get("ok"):
            report.accepted.append(what)
        elif verdict.get("error") in _FORMAT_REJECTIONS:
            report.rejected_format += 1
        elif verdict.get("error") == "VerificationFailure":
            report.rejected_verify += 1
        else:
            report.escapes.append((what, str(verdict.get("error")),
                                   str(verdict.get("detail", ""))[:120]))
    return report
