"""Stage checkpointing for long proving runs (``zkml prove --checkpoint``).

A :class:`CheckpointStore` persists each completed pipeline stage
(``synthesize`` → ``keygen`` → ``prove``) to a directory, so an
interrupted run resumes from the last completed stage instead of
starting over.  Because the prover is fully deterministic, a resumed run
produces a proof **byte-identical** to an uninterrupted one — the
checkpointed witness grid and keys are the complete prover input.

Layout::

    DIR/manifest.json    {"schema", "config", "stages": {name: checksum}}
    DIR/synthesize.pkl   pickled SynthesizedModel (witness grid + layout)
    DIR/keygen.pkl       pickled (pk, vk, pk_cache_hit)
    DIR/prove.pkl        pickled proof + phase timings + op counts

Every stage file carries a blake2b checksum in the manifest; a mismatch
on load raises :class:`~repro.resilience.errors.CacheCorruptionError`
and the caller recomputes the stage (detect → evict → rebuild, same
policy as the pk cache).  A checkpoint is bound to its proving
*configuration* (model, input digest, scheme, grid parameters): resuming
with a different configuration raises
:class:`~repro.resilience.errors.CheckpointError` instead of silently
proving the wrong circuit.

Stage writes run through the ``disk_write`` fault-injection site and are
retried with backoff before surfacing a ``CheckpointError``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.obs import log as obs_log
from repro.resilience import events, faults
from repro.resilience.errors import CacheCorruptionError, CheckpointError

__all__ = ["CheckpointStore", "batch_proving_config_digest",
           "proving_config_digest"]

#: Manifest schema tag.
SCHEMA = "zkml-checkpoint/v1"

#: Pipeline stages, in order.
STAGES = ("synthesize", "keygen", "prove")

_log = obs_log.get_logger("checkpoint")


def proving_config_digest(spec, inputs: Dict[str, np.ndarray],
                          scheme_name: str, num_cols: int, scale_bits: int,
                          lookup_bits: Optional[int], k: Optional[int]) -> str:
    """A binding digest of everything that determines the proof bytes."""
    h = hashlib.blake2b(digest_size=16)
    h.update(("%s|%s|%d|%d|%r|%r" % (spec.name, scheme_name, num_cols,
                                     scale_bits, lookup_bits, k)).encode())
    for name in sorted(inputs):
        arr = np.ascontiguousarray(np.asarray(inputs[name], dtype=np.float64))
        h.update(name.encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def batch_proving_config_digest(spec, batch_inputs, scheme_name: str,
                                num_cols: int, scale_bits: int,
                                lookup_bits: Optional[int],
                                k: Optional[int] = None) -> str:
    """A binding digest of a whole batch-proving configuration.

    Chains the per-inference :func:`proving_config_digest` values in batch
    order, so any change to the batch size, ordering, or any single input
    set produces a different digest.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(("batch|%d" % len(batch_inputs)).encode())
    for inputs in batch_inputs:
        h.update(proving_config_digest(spec, inputs, scheme_name, num_cols,
                                       scale_bits, lookup_bits, k).encode())
    return h.hexdigest()


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class CheckpointStore:
    """Persist and resume pipeline stages under one directory."""

    def __init__(self, directory: str, config_digest: str,
                 resume: bool = False, write_attempts: int = 3,
                 backoff_seconds: float = 0.05):
        self.directory = directory
        self.config_digest = config_digest
        self.write_attempts = write_attempts
        self.backoff_seconds = backoff_seconds
        self._stages: Dict[str, str] = {}
        os.makedirs(directory, exist_ok=True)
        manifest_path = self._manifest_path()
        if resume and os.path.exists(manifest_path):
            self._load_manifest(manifest_path)
        else:
            # fresh run: forget any stale stages from a previous config
            self._write_manifest()

    # -- manifest ------------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    def _stage_path(self, stage: str) -> str:
        return os.path.join(self.directory, "%s.pkl" % stage)

    def _load_manifest(self, path: str) -> None:
        try:
            with open(path) as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                "unreadable checkpoint manifest at %s: %s" % (path, exc),
                directory=self.directory,
            ) from exc
        if manifest.get("schema") != SCHEMA:
            raise CheckpointError(
                "checkpoint schema %r does not match %r"
                % (manifest.get("schema"), SCHEMA),
                directory=self.directory,
            )
        if manifest.get("config") != self.config_digest:
            raise CheckpointError(
                "checkpoint was written for a different proving "
                "configuration (model/inputs/scheme/grid changed)",
                directory=self.directory,
                expected=self.config_digest,
                found=manifest.get("config"),
            )
        stages = manifest.get("stages", {})
        if not isinstance(stages, dict):
            raise CheckpointError("malformed checkpoint manifest",
                                  directory=self.directory)
        self._stages = {str(k): str(v) for k, v in stages.items()}

    def _write_manifest(self) -> None:
        payload = json.dumps(
            {"schema": SCHEMA, "config": self.config_digest,
             "stages": self._stages},
            indent=2, sort_keys=True,
        )
        self._atomic_write(self._manifest_path(), payload.encode(),
                           stage="manifest")

    # -- stage IO ------------------------------------------------------------

    def completed_stages(self) -> Dict[str, str]:
        """Stage name -> checksum for every recorded stage."""
        return dict(self._stages)

    def has(self, stage: str) -> bool:
        return stage in self._stages

    def save(self, stage: str, payload: Any) -> None:
        """Pickle a stage result, checksum it, and record it durably."""
        data = pickle.dumps(payload)
        self._atomic_write(self._stage_path(stage), data, stage=stage)
        self._stages[stage] = _checksum(data)
        self._write_manifest()
        _log.debug("checkpointed stage", stage=stage, bytes=len(data))

    def load(self, stage: str) -> Any:
        """Load a stage result, verifying its checksum first."""
        path = self._stage_path(stage)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise CacheCorruptionError(
                "checkpoint stage %r is recorded but unreadable" % stage,
                phase="checkpoint", stage=stage, path=path,
            ) from exc
        expected = self._stages.get(stage)
        actual = _checksum(data)
        if expected != actual:
            raise CacheCorruptionError(
                "checkpoint stage %r failed its checksum" % stage,
                phase="checkpoint", stage=stage,
                expected=expected, actual=actual,
            )
        try:
            return pickle.loads(data)
        except Exception as exc:  # noqa: BLE001 — checksummed but unpicklable = corrupt
            raise CacheCorruptionError(
                "checkpoint stage %r does not unpickle" % stage,
                phase="checkpoint", stage=stage,
            ) from exc

    def discard(self, stage: str) -> None:
        """Forget a stage (e.g. after its checksum failed)."""
        self._stages.pop(stage, None)
        try:
            os.remove(self._stage_path(stage))
        except OSError:
            pass
        self._write_manifest()

    def _atomic_write(self, path: str, data: bytes, stage: str) -> None:
        """Write-then-rename, retrying transient failures with backoff."""
        tmp = path + ".tmp"
        last: Optional[BaseException] = None
        for attempt in range(1, self.write_attempts + 1):
            try:
                faults.maybe_inject("disk_write")
                with open(tmp, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
                return
            except (OSError, faults.InjectedFault) as exc:
                last = exc
                if attempt < self.write_attempts:
                    events.retried("checkpoint_write", attempt,
                                   stage=stage, error=type(exc).__name__)
                    time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
        raise CheckpointError(
            "could not write checkpoint stage %r after %d attempts"
            % (stage, self.write_attempts),
            stage=stage, path=path,
        ) from last
