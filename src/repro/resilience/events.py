"""Process-wide resilience event counters and their log lines.

Every recovery the pipeline performs — a retry, a degradation (parallel
prover falling back to serial, Freivalds falling back to direct matmul),
a cache rebuild — is *visible*: it increments a counter here and emits a
``warning`` log line.  The counters live in a module-global
:class:`~repro.obs.metrics.MetricsRegistry` so call sites that have no
per-run registry (e.g. ``repro.perf.parallel``) can still report, and the
benchmark harness can assert a clean run performed **zero** recoveries.

Counter families (Prometheus naming):

- ``resilience_degraded_total{reason=...}`` — a feature was given up on
  (the run continues on a slower/simpler path);
- ``resilience_retries_total{phase=...}``   — a supervised phase attempt
  failed transiently and was retried;
- ``resilience_recovered_total{reason=...}`` — a corrupted artifact was
  detected and rebuilt.

Observers (the serving path's flight recorder) can subscribe with
:func:`add_listener` to receive every event as it happens — a crash dump
then shows the degradations and retries that led up to the fault, not
just the final error.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.obs import log as obs_log
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EVENTS",
    "add_listener",
    "remove_listener",
    "degraded",
    "retried",
    "recovered",
    "counts",
    "reset",
    "merge_into",
]

#: Process-global registry holding every resilience counter.
EVENTS = MetricsRegistry()

_log = obs_log.get_logger("resilience")

_DEGRADED = ("resilience_degraded_total",
             "degradation events (feature given up, run continued)")
_RETRIES = ("resilience_retries_total",
            "supervised phase retries after transient failures")
_RECOVERED = ("resilience_recovered_total",
              "corrupted artifacts detected and rebuilt")

#: Subscribed observers, called as ``fn(kind, fields)`` per event.
_listeners: List[Callable[[str, Dict[str, Any]], None]] = []


def add_listener(fn: Callable[[str, Dict[str, Any]], None]) -> None:
    """Subscribe ``fn(kind, fields)`` to every resilience event.

    ``kind`` is ``"degraded"`` / ``"retried"`` / ``"recovered"``;
    ``fields`` carries the reason/phase plus the call's detail kwargs.
    Listener exceptions are swallowed — observability must never turn a
    recovery into a failure.
    """
    _listeners.append(fn)


def remove_listener(fn: Callable[[str, Dict[str, Any]], None]) -> None:
    """Unsubscribe a listener (no-op if it was never added)."""
    try:
        _listeners.remove(fn)
    except ValueError:
        pass


def _notify(kind: str, fields: Dict[str, Any]) -> None:
    for fn in list(_listeners):
        try:
            fn(kind, fields)
        except Exception:  # noqa: BLE001 — observers must not break recovery
            pass


def degraded(reason: str, **detail: Any) -> None:
    """Count and log one degradation event (``reason`` labels the path)."""
    EVENTS.counter(*_DEGRADED, reason=reason).inc()
    _log.warning("degraded", reason=reason, **detail)
    _notify("degraded", dict(detail, reason=reason))


def retried(phase: str, attempt: int, **detail: Any) -> None:
    """Count and log one retry of a supervised phase."""
    EVENTS.counter(*_RETRIES, phase=phase).inc()
    _log.warning("retrying", phase=phase, attempt=attempt, **detail)
    _notify("retried", dict(detail, phase=phase, attempt=attempt))


def recovered(reason: str, **detail: Any) -> None:
    """Count and log one detect-and-rebuild recovery."""
    EVENTS.counter(*_RECOVERED, reason=reason).inc()
    _log.warning("recovered", reason=reason, **detail)
    _notify("recovered", dict(detail, reason=reason))


def counts() -> Dict[str, float]:
    """Current totals per family (summed over labels) plus per-label detail.

    Keys: ``degraded`` / ``retries`` / ``recovered`` totals, and
    ``degraded{reason="x"}``-style entries for each label combination.
    """
    out: Dict[str, float] = {"degraded": 0.0, "retries": 0.0,
                             "recovered": 0.0}
    for family, short in ((_DEGRADED[0], "degraded"),
                          (_RETRIES[0], "retries"),
                          (_RECOVERED[0], "recovered")):
        try:
            values = EVENTS.values(family)
        except KeyError:
            continue
        for key, value in sorted(values.items()):
            out[short] += value
            label = ",".join('%s="%s"' % kv for kv in key)
            out["%s{%s}" % (short, label)] = value
    return out


def reset() -> None:
    """Drop all recorded events (tests and bench runs start clean)."""
    EVENTS._families.clear()


def merge_into(registry: MetricsRegistry) -> None:
    """Copy current resilience counters into another registry.

    Lets ``zkml --metrics`` output include the recoveries of the run it
    just performed.
    """
    for name in (_DEGRADED[0], _RETRIES[0], _RECOVERED[0]):
        try:
            family = EVENTS._families[name]
        except KeyError:
            continue
        for key, metric in family.instances.items():
            registry.counter(name, family.help,
                             **dict(key)).inc(metric.value)
