"""Supervised phase execution: deadlines, retries, degradation, resume.

A :class:`Supervisor` runs named pipeline phases with a safety harness:

- **bounded retry with exponential backoff** for *transient* failures
  (injected faults, ``OSError``-family conditions) — each retry is
  counted (``resilience_retries_total{phase=...}``) and logged; when the
  budget is exhausted the last failure is wrapped in a typed
  :class:`~repro.resilience.errors.ProvingError` carrying the phase;
- **graceful degradation**: a ``recover`` table maps a typed error to a
  handler that repairs state (e.g. rewrite the layout plan from
  Freivalds to direct matmul) before the phase is re-run — each
  degradation fires at most once per phase run;
- **per-phase deadlines** (cooperative): the elapsed wall-clock is
  checked after every attempt and before every retry; an overrun raises
  :class:`~repro.resilience.errors.DeadlineExceeded` instead of letting
  a run silently blow its budget;
- **stage checkpointing** via :meth:`Supervisor.stage`: a completed
  phase's payload is persisted to a
  :class:`~repro.resilience.checkpoint.CheckpointStore` and replayed on
  resume; a corrupted stage file is discarded and recomputed.

Every attempt runs under a ``supervised:<phase>`` span on the active
tracer, so retries and recoveries are visible in the trace tree, not
silent.  The runner is deliberately generic — it knows nothing about
circuits — and :func:`repro.runtime.pipeline.prove_model` wires the
synthesize/keygen/prove stages through it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.obs.trace import get_tracer
from repro.resilience import events
from repro.resilience.errors import (
    DeadlineExceeded,
    ProvingError,
    ResilienceError,
)
from repro.resilience.faults import InjectedFault

__all__ = ["RetryPolicy", "Supervisor", "DEFAULT_RETRY"]

#: Exception types treated as transient (retried with backoff).
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (
    InjectedFault, ConnectionError, TimeoutError, OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (no jitter: deterministic)."""

    max_attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * self.factor ** (attempt - 1),
                   self.max_delay)


DEFAULT_RETRY = RetryPolicy()

RecoverTable = Dict[Type[ResilienceError], Callable[[ResilienceError], None]]


class Supervisor:
    """Runs pipeline phases under retry/deadline/degradation policy."""

    def __init__(self, retry: Optional[RetryPolicy] = None,
                 deadlines: Optional[Dict[str, float]] = None,
                 tracer=None, sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic):
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.deadlines = dict(deadlines or {})
        self._tracer = tracer
        self._sleep = sleep
        self._clock = clock

    @property
    def tracer(self):
        return self._tracer if self._tracer is not None else get_tracer()

    # -- core runner ---------------------------------------------------------

    def run_phase(self, name: str, fn: Callable[[], Any], *,
                  recover: Optional[RecoverTable] = None,
                  deadline: Optional[float] = None) -> Any:
        """Run ``fn`` under the phase policy; returns its result.

        Transient failures are retried up to the policy budget, then
        wrapped in a :class:`ProvingError` attributed to ``name``.
        Typed :class:`ResilienceError`\\ s pass through (annotated with
        the phase) unless ``recover`` maps their type to a handler, in
        which case the handler runs once and the phase is re-attempted.
        """
        deadline = self.deadlines.get(name) if deadline is None else deadline
        start = self._clock()
        attempt = 0
        recovered: set = set()
        while True:
            attempt += 1
            try:
                with self.tracer.span("supervised:%s" % name,
                                      attempt=attempt):
                    out = fn()
            except ResilienceError as exc:
                exc.with_context(phase=name)
                handler = self._handler_for(recover, exc)
                if handler is not None and type(exc) not in recovered:
                    recovered.add(type(exc))
                    handler(exc)
                    self._check_deadline(name, start, deadline)
                    continue
                raise
            except TRANSIENT_ERRORS as exc:
                self._check_deadline(name, start, deadline, cause=exc)
                transient = getattr(exc, "transient", True)
                if not transient or attempt >= self.retry.max_attempts:
                    raise ProvingError(
                        "phase %r failed after %d attempt%s: %s"
                        % (name, attempt, "s" if attempt != 1 else "", exc),
                        phase=name, attempts=attempt,
                        cause=type(exc).__name__,
                    ) from exc
                events.retried(name, attempt, error=type(exc).__name__)
                self._sleep(self.retry.delay(attempt))
                continue
            self._check_deadline(name, start, deadline)
            return out

    def stage(self, store, name: str, fn: Callable[[], Any], *,
              recover: Optional[RecoverTable] = None) -> Tuple[Any, bool]:
        """Checkpoint-aware :meth:`run_phase`.

        Returns ``(payload, resumed)``.  With a store, a previously
        completed stage is replayed from disk (``resumed=True``); a
        stage file failing its checksum is discarded, counted as a
        recovery, and recomputed.  The fresh payload is checkpointed
        before it is returned.
        """
        if store is not None and store.has(name):
            from repro.resilience.errors import CacheCorruptionError

            try:
                payload = store.load(name)
                with self.tracer.span("resume:%s" % name):
                    pass
                return payload, True
            except CacheCorruptionError as exc:
                events.recovered("checkpoint_stage_rebuild", stage=name,
                                 detail=str(exc)[:120])
                store.discard(name)
        payload = self.run_phase(name, fn, recover=recover)
        if store is not None:
            store.save(name, payload)
        return payload, False

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _handler_for(recover: Optional[RecoverTable],
                     exc: ResilienceError):
        if not recover:
            return None
        for exc_type, handler in recover.items():
            if isinstance(exc, exc_type):
                return handler
        return None

    def _check_deadline(self, name: str, start: float,
                        deadline: Optional[float],
                        cause: Optional[BaseException] = None) -> None:
        if deadline is None:
            return
        elapsed = self._clock() - start
        if elapsed > deadline:
            raise DeadlineExceeded(
                "phase %r exceeded its %.1fs deadline (%.1fs elapsed)"
                % (name, deadline, elapsed),
                phase=name, deadline=deadline,
                elapsed=round(elapsed, 3),
            ) from cause
