"""Versioned proof envelope: the consumer-facing proof format.

A :class:`ProofEnvelope` packages everything a verifier needs to check a
proof — schema id, commitment scheme, model name, verifying-key hash,
proving-config digest, public inputs, proof bytes — in one canonical,
checksummed byte string (``zkml-proof-envelope/v1``).  The decoder is
adversary-facing: every count and size is capped *before* any allocation
or field arithmetic, and every rejection is a typed
:class:`~repro.resilience.errors.EnvelopeError` subclass.

See ``docs/verification.md`` for the wire format and threat model.
"""

from repro.envelope.format import (
    DEFAULT_CAPS,
    SCHEMA_V1,
    EnvelopeCaps,
    ProofEnvelope,
    decode_envelope,
    encode_envelope,
    envelope_config_digest,
    is_envelope,
)
from repro.envelope.verify import verify_envelope

__all__ = [
    "SCHEMA_V1",
    "EnvelopeCaps",
    "DEFAULT_CAPS",
    "ProofEnvelope",
    "encode_envelope",
    "decode_envelope",
    "envelope_config_digest",
    "is_envelope",
    "verify_envelope",
]
