"""Canonical encoding/decoding of the ``zkml-proof-envelope/v1`` format.

Wire layout (all integers little-endian)::

    [u8  len][schema id ascii]          "zkml-proof-envelope/v1"
    [u8  len][scheme ascii]             "kzg" | "ipa"
    [u8  len][model utf-8]              zoo model name
    [32B verifying-key hash]            VerifyingKey.digest()
    [16B config digest]                 envelope_config_digest(...)
    [u32 num instance columns]
      per column: [u32 count][count x 32B scalar]
    [u32 proof length][proof bytes]     repro.halo2.proof wire format
    [16B blake2b-16 checksum]           over every preceding byte

The encoding is canonical: one byte string per envelope value, no
optional fields, no padding — equal envelopes encode to equal bytes, so
the checksum doubles as a content address.

The decoder is written against a hostile-input threat model (see
``docs/verification.md``): the total size cap is checked before the
first byte is parsed, every declared count is checked against its cap
*and* the remaining data before anything sized by it is allocated, and
the checksum is verified last — a crafted envelope can carry a valid
checksum, so caps must not wait for it.  Rejections raise typed
:class:`~repro.resilience.errors.EnvelopeError` subclasses naming the
violation; this module never touches field arithmetic, so a rejection
costs no NTT/commitment work (asserted by tests via ``obs.stats``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from repro.resilience.errors import (
    EnvelopeCapError,
    EnvelopeChecksumError,
    EnvelopeError,
    EnvelopeSchemaError,
    EnvelopeTruncatedError,
)

__all__ = [
    "SCHEMA_V1",
    "KNOWN_SCHEMES",
    "CHECKSUM_BYTES",
    "EnvelopeCaps",
    "DEFAULT_CAPS",
    "ProofEnvelope",
    "envelope_config_digest",
    "encode_envelope",
    "decode_envelope",
    "is_envelope",
]

#: The one schema id this decoder speaks.
SCHEMA_V1 = "zkml-proof-envelope/v1"

#: Commitment schemes an envelope may name.
KNOWN_SCHEMES = ("kzg", "ipa")

#: Width of the trailing blake2b integrity checksum.
CHECKSUM_BYTES = 16

_SCALAR_BYTES = 32
_VK_HASH_BYTES = 32
_CONFIG_DIGEST_BYTES = 16


@dataclass(frozen=True)
class EnvelopeCaps:
    """Hard per-envelope resource caps the decoder enforces.

    Defaults are sized from the mini-scale zoo (a dlrm k=9 proof is
    ~1.3 MB with one 512-value instance column) with generous headroom
    for larger circuits; a verify service under attack can tighten them
    per deployment.  Caps bound *declared* values before allocation, so
    a hostile length prefix cannot drive memory proportional to a number
    the attacker wrote.
    """

    #: Total serialized envelope size (checked before parsing starts).
    max_envelope_bytes: int = 64 << 20
    #: Number of instance (public-input) columns.
    max_instance_columns: int = 64
    #: Total public-input scalars summed across all columns.
    max_public_inputs: int = 1 << 18
    #: Length of the embedded proof byte string.
    max_proof_bytes: int = 48 << 20


#: The caps production surfaces use unless configured otherwise.
DEFAULT_CAPS = EnvelopeCaps()


@dataclass
class ProofEnvelope:
    """One proof plus everything needed to verify it, self-describing."""

    scheme_name: str
    model: str
    vk_hash: bytes
    config_digest: bytes
    instance: List[List[int]]
    proof_bytes: bytes
    schema: str = SCHEMA_V1
    #: Filled by :func:`decode_envelope` with the envelope's own trailing
    #: checksum (hex); ``encode()`` recomputes it either way.
    checksum: str = dataclass_field(default="", repr=False)

    @property
    def vk_hash_hex(self) -> str:
        return self.vk_hash.hex()

    @property
    def config_digest_hex(self) -> str:
        return self.config_digest.hex()

    def num_public_inputs(self) -> int:
        return sum(len(col) for col in self.instance)

    def encode(self) -> bytes:
        return encode_envelope(self)

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary (no proof bytes) for logs/status."""
        return {
            "schema": self.schema,
            "scheme": self.scheme_name,
            "model": self.model,
            "vk_hash": self.vk_hash_hex,
            "config_digest": self.config_digest_hex,
            "instance_columns": len(self.instance),
            "public_inputs": self.num_public_inputs(),
            "proof_bytes": len(self.proof_bytes),
        }


def envelope_config_digest(num_cols: int, scale_bits: int, k: int,
                           lookup_bits: Optional[int] = None) -> bytes:
    """Digest of the proving configuration the circuit was built under.

    Binds the envelope to the scale/columns configuration so a verifier
    can refuse a proof produced under a config its registry has never
    seen, without shipping the whole config in the envelope.
    """
    h = hashlib.blake2b(digest_size=_CONFIG_DIGEST_BYTES)
    h.update(b"zkml-config:%d:%d:%d:%d"
             % (num_cols, scale_bits, k,
                -1 if lookup_bits is None else lookup_bits))
    return h.digest()


def _write_str(out: bytearray, value: str, what: str) -> None:
    raw = value.encode("utf-8")
    if len(raw) > 255:
        raise EnvelopeError("%s %r exceeds 255 encoded bytes" % (what, value))
    out.append(len(raw))
    out += raw


def encode_envelope(env: ProofEnvelope) -> bytes:
    """Serialize an envelope to its canonical byte string."""
    if env.schema != SCHEMA_V1:
        raise EnvelopeSchemaError("cannot encode schema %r (this writer "
                                  "speaks %r)" % (env.schema, SCHEMA_V1))
    if env.scheme_name not in KNOWN_SCHEMES:
        raise EnvelopeSchemaError("unknown scheme %r (expected one of %s)"
                                  % (env.scheme_name,
                                     "/".join(KNOWN_SCHEMES)))
    if len(env.vk_hash) != _VK_HASH_BYTES:
        raise EnvelopeError("vk_hash must be %d bytes, got %d"
                            % (_VK_HASH_BYTES, len(env.vk_hash)))
    if len(env.config_digest) != _CONFIG_DIGEST_BYTES:
        raise EnvelopeError("config_digest must be %d bytes, got %d"
                            % (_CONFIG_DIGEST_BYTES, len(env.config_digest)))
    out = bytearray()
    _write_str(out, env.schema, "schema id")
    _write_str(out, env.scheme_name, "scheme")
    _write_str(out, env.model, "model name")
    out += env.vk_hash
    out += env.config_digest
    out += len(env.instance).to_bytes(4, "little")
    for col in env.instance:
        out += len(col).to_bytes(4, "little")
        for value in col:
            out += int(value).to_bytes(_SCALAR_BYTES, "little")
    out += len(env.proof_bytes).to_bytes(4, "little")
    out += env.proof_bytes
    out += hashlib.blake2b(bytes(out), digest_size=CHECKSUM_BYTES).digest()
    return bytes(out)


def is_envelope(data: bytes) -> bool:
    """Cheap sniff: does ``data`` start with the v1 schema id?

    Used to route byte strings between the envelope decoder and the
    legacy loose-proof decoder without attempting a full parse.
    """
    prefix = bytes([len(SCHEMA_V1)]) + SCHEMA_V1.encode()
    return bytes(data[: len(prefix)]) == prefix


# -- bounds-checked readers ---------------------------------------------------


def _read_str(data: bytes, pos: int, what: str) -> Tuple[str, int]:
    if pos + 1 > len(data):
        raise EnvelopeTruncatedError("envelope ends before %s length byte"
                                     % what, offset=pos)
    n = data[pos]
    pos += 1
    if pos + n > len(data):
        raise EnvelopeTruncatedError(
            "envelope ends inside %s (%d bytes promised, %d left)"
            % (what, n, len(data) - pos), offset=pos)
    try:
        value = data[pos : pos + n].decode("utf-8")
    except UnicodeDecodeError:
        raise EnvelopeSchemaError("%s is not valid utf-8" % what, offset=pos)
    return value, pos + n


def _read_fixed(data: bytes, pos: int, n: int, what: str) -> Tuple[bytes, int]:
    if pos + n > len(data):
        raise EnvelopeTruncatedError(
            "envelope ends inside %s (%d bytes needed, %d left)"
            % (what, n, len(data) - pos), offset=pos)
    return bytes(data[pos : pos + n]), pos + n


def _read_u32(data: bytes, pos: int, what: str) -> Tuple[int, int]:
    if pos + 4 > len(data):
        raise EnvelopeTruncatedError("envelope ends before %s" % what,
                                     offset=pos)
    return int.from_bytes(data[pos : pos + 4], "little"), pos + 4


def decode_envelope(data: bytes,
                    caps: EnvelopeCaps = DEFAULT_CAPS) -> ProofEnvelope:
    """Parse and integrity-check a serialized envelope.

    Check order is part of the contract (tests pin it):

    1. total size against ``caps.max_envelope_bytes`` — before reading
       byte zero;
    2. schema id, then scheme name (:class:`EnvelopeSchemaError`);
    3. structure, with every count/size checked against its cap and the
       remaining data *before* the corresponding allocation
       (:class:`EnvelopeCapError` / :class:`EnvelopeTruncatedError`);
    4. the trailing checksum, last (:class:`EnvelopeChecksumError`) — a
       hostile sender can compute a valid checksum over an over-cap
       body, so caps must not hide behind it.

    No field arithmetic, NTT, or commitment work happens on any path
    through this function.
    """
    data = bytes(data)
    if len(data) > caps.max_envelope_bytes:
        raise EnvelopeCapError(
            "envelope is %d bytes (cap %d)"
            % (len(data), caps.max_envelope_bytes),
            size=len(data), cap=caps.max_envelope_bytes)

    schema, pos = _read_str(data, 0, "schema id")
    if schema != SCHEMA_V1:
        raise EnvelopeSchemaError("unknown envelope schema %r (expected %r)"
                                  % (schema[:64], SCHEMA_V1))
    scheme_name, pos = _read_str(data, pos, "scheme")
    if scheme_name not in KNOWN_SCHEMES:
        raise EnvelopeSchemaError("unknown scheme %r (expected one of %s)"
                                  % (scheme_name[:64],
                                     "/".join(KNOWN_SCHEMES)))
    model, pos = _read_str(data, pos, "model name")
    vk_hash, pos = _read_fixed(data, pos, _VK_HASH_BYTES, "verifying-key hash")
    config_digest, pos = _read_fixed(data, pos, _CONFIG_DIGEST_BYTES,
                                     "config digest")

    num_cols, pos = _read_u32(data, pos, "instance column count")
    if num_cols > caps.max_instance_columns:
        raise EnvelopeCapError(
            "envelope declares %d instance columns (cap %d)"
            % (num_cols, caps.max_instance_columns),
            count=num_cols, cap=caps.max_instance_columns)
    if num_cols == 0:
        raise EnvelopeError("envelope carries no public inputs "
                            "(zero instance columns)")
    instance: List[List[int]] = []
    total_inputs = 0
    for col_idx in range(num_cols):
        count, pos = _read_u32(data, pos,
                               "column %d value count" % col_idx)
        total_inputs += count
        if total_inputs > caps.max_public_inputs:
            raise EnvelopeCapError(
                "envelope declares %d public inputs through column %d "
                "(cap %d)" % (total_inputs, col_idx, caps.max_public_inputs),
                count=total_inputs, cap=caps.max_public_inputs)
        need = count * _SCALAR_BYTES
        if need > len(data) - pos:
            raise EnvelopeTruncatedError(
                "column %d promises %d scalars but only %d bytes remain"
                % (col_idx, count, len(data) - pos), offset=pos)
        col = [int.from_bytes(data[pos + i * _SCALAR_BYTES
                                   : pos + (i + 1) * _SCALAR_BYTES],
                              "little")
               for i in range(count)]
        pos += need
        instance.append(col)

    proof_len, pos = _read_u32(data, pos, "proof length")
    if proof_len > caps.max_proof_bytes:
        raise EnvelopeCapError(
            "envelope declares a %d-byte proof (cap %d)"
            % (proof_len, caps.max_proof_bytes),
            size=proof_len, cap=caps.max_proof_bytes)
    if proof_len == 0:
        raise EnvelopeError("envelope carries empty proof bytes")
    proof_bytes, pos = _read_fixed(data, pos, proof_len, "proof bytes")

    checksum, pos = _read_fixed(data, pos, CHECKSUM_BYTES, "checksum")
    if pos != len(data):
        raise EnvelopeError("trailing bytes after envelope checksum",
                            offset=pos, length=len(data))
    expected = hashlib.blake2b(data[: len(data) - CHECKSUM_BYTES],
                               digest_size=CHECKSUM_BYTES).digest()
    if checksum != expected:
        raise EnvelopeChecksumError("envelope checksum mismatch",
                                    expected=expected.hex(),
                                    got=checksum.hex())

    return ProofEnvelope(
        scheme_name=scheme_name,
        model=model,
        vk_hash=vk_hash,
        config_digest=config_digest,
        instance=instance,
        proof_bytes=proof_bytes,
        schema=schema,
        checksum=checksum.hex(),
    )
