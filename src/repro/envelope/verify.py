"""Verify a decoded envelope against a verifying key.

The decoder (:mod:`repro.envelope.format`) already did the cheap
adversarial filtering; this module does the binding checks (does the
envelope's vk hash / scheme match the key we were handed?) and only then
hands off to the strict proof verifier — the first point where field
arithmetic happens.
"""

from __future__ import annotations

from repro.envelope.format import ProofEnvelope
from repro.field import GOLDILOCKS, PrimeField
from repro.resilience.errors import VerificationFailure

__all__ = ["verify_envelope"]


def verify_envelope(env: ProofEnvelope, vk, field: PrimeField = GOLDILOCKS,
                    strict: bool = True) -> bool:
    """Verify an envelope's proof against ``vk``.

    Binding checks come first: the envelope's verifying-key hash must
    equal ``vk.digest()`` and its scheme must equal ``vk.scheme_name`` —
    a mismatch is a :class:`~repro.resilience.errors.VerificationFailure`
    (the envelope is well-formed; it just isn't a proof *for this key*).
    Only after binding passes do proof deserialization and the strict
    verifier run.  ``strict=False`` restores the legacy boolean path.
    """
    from repro.commit import scheme_by_name
    from repro.halo2.proof import proof_from_bytes
    from repro.halo2.verifier import verify_proof_strict
    from repro.resilience.errors import ProofFormatError

    if env.scheme_name != vk.scheme_name:
        exc = VerificationFailure(
            "envelope scheme %r does not match verifying key scheme %r"
            % (env.scheme_name, vk.scheme_name), model=env.model)
        if strict:
            raise exc
        return False
    if env.vk_hash != vk.digest():
        exc = VerificationFailure(
            "envelope verifying-key hash %s does not match key %s"
            % (env.vk_hash_hex[:16], vk.digest().hex()[:16]),
            model=env.model)
        if strict:
            raise exc
        return False
    scheme = scheme_by_name(env.scheme_name, field)
    try:
        proof = proof_from_bytes(env.proof_bytes)
        verify_proof_strict(vk, proof, env.instance, scheme)
    except (ProofFormatError, VerificationFailure):
        if strict:
            raise
        return False
    return True
