"""End-to-end runtime: prove/verify pipeline, estimates, prior-work baselines."""

from repro.runtime.pipeline import (
    BatchProveResult,
    ProveResult,
    prove_batch,
    prove_model,
    verify_model_proof,
)
from repro.runtime.estimate import estimate_model, EndToEndEstimate
from repro.runtime.audit import (
    AuditEntry,
    AuditFinding,
    AuditLog,
    ModelCommitment,
    audit,
)
from repro.runtime.baselines import (
    BaselineEstimate,
    supports_cnn_only,
    vcnn_estimate,
    zkcnn_estimate,
)

__all__ = [
    "AuditLog",
    "AuditEntry",
    "AuditFinding",
    "ModelCommitment",
    "audit",
    "prove_model",
    "prove_batch",
    "BatchProveResult",
    "verify_model_proof",
    "ProveResult",
    "estimate_model",
    "EndToEndEstimate",
    "zkcnn_estimate",
    "vcnn_estimate",
    "supports_cnn_only",
    "BaselineEstimate",
]
