"""Analytic cost models of the prior-work comparators (Table 9).

Neither zkCNN nor vCNN is runnable offline, so we model each from its
published scaling behaviour, anchored to the numbers Table 9 reports for
VGG-16 on CIFAR-10:

- **zkCNN** (Liu et al., GKR-based): proving quasi-linear in flops
  (88.3 s for VGG-16's ~628 Mflop), verification tens of ms with polylog
  scaling, proofs of hundreds of KB growing with log^2 of the circuit.
- **vCNN** (Lee et al., QAP/Groth16-based): proving several orders slower
  (estimated 31 h for VGG-16 by [27]), constant ~0.34 KB proofs, and
  pairing-dominated verification reported at ~20 s.

Both systems support only CNN operations (paper Table 2), so the
estimators refuse models with transformer/recommender layers — exactly
the gap ZKML closes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.spec import ModelSpec

#: Anchor: VGG-16 CIFAR-10 flops in the paper's Table 5.
_VGG16_FLOPS = 627_900_000

#: Layer kinds CNN-only systems can express.
_CNN_KINDS = {
    "conv2d", "fully_connected", "relu", "max_pool2d", "avg_pool2d",
    "global_avg_pool", "flatten", "reshape", "add", "batch_norm",
    "pad", "identity", "squeeze", "transpose", "softmax",
}


class UnsupportedModel(ValueError):
    """The baseline system cannot express this model (paper Table 2)."""


@dataclass(frozen=True)
class BaselineEstimate:
    system: str
    proving_seconds: float
    verification_seconds: float
    proof_bytes: int


def supports_cnn_only(spec: ModelSpec) -> bool:
    """Whether a CNN-only system (zkCNN/vCNN) can express the model."""
    return all(layer.kind in _CNN_KINDS for layer in spec.layers)


def _check(spec: ModelSpec, system: str) -> int:
    if not supports_cnn_only(spec):
        unsupported = sorted(
            {l.kind for l in spec.layers if l.kind not in _CNN_KINDS}
        )
        raise UnsupportedModel(
            "%s supports only CNNs; %s uses %s"
            % (system, spec.name, unsupported)
        )
    return spec.flops()


def zkcnn_estimate(spec: ModelSpec) -> BaselineEstimate:
    """GKR-based zkCNN: 88.3 s / 59 ms / 341 KB at VGG-16 scale."""
    flops = _check(spec, "zkCNN")
    ratio = flops / _VGG16_FLOPS
    log_ratio = math.log2(max(flops, 2)) / math.log2(_VGG16_FLOPS)
    return BaselineEstimate(
        system="zkCNN",
        proving_seconds=88.3 * ratio * max(log_ratio, 0.3),
        verification_seconds=0.059 * max(log_ratio, 0.3) ** 2,
        proof_bytes=int(341_000 * max(log_ratio, 0.3) ** 2),
    )


def vcnn_estimate(spec: ModelSpec) -> BaselineEstimate:
    """QAP-based vCNN: ~31 h proving at VGG-16 scale, constant proofs."""
    flops = _check(spec, "vCNN")
    ratio = flops / _VGG16_FLOPS
    return BaselineEstimate(
        system="vCNN",
        proving_seconds=31 * 3600 * ratio,
        verification_seconds=20.0,
        proof_bytes=340,
    )
