"""The user-facing prove/verify pipeline (paper §8's two stages).

``prove_model`` synthesizes the circuit from a materialized model spec,
exposes the model outputs as public inputs, runs keygen and the prover,
and measures wall-clock times; ``verify_model_proof`` replays the
verifier.  Proof artifacts pickle cleanly for the CLI's file workflow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

import numpy as np

from repro.commit import scheme_by_name
from repro.compiler import SynthesizedModel, synthesize_model
from repro.field import GOLDILOCKS, PrimeField
from repro.halo2 import Proof, VerifyingKey, create_proof, keygen, verify_proof
from repro.model.spec import ModelSpec
from repro.perf.pkcache import GLOBAL_PK_CACHE
from repro.perf.timer import PhaseTimer


@dataclass
class ProveResult:
    """Everything a proving run produces."""

    spec_name: str
    scheme_name: str
    proof: Proof
    vk: VerifyingKey
    instance: List[List[int]]
    outputs: Dict[str, np.ndarray]
    num_cols: int
    k: int
    scale_bits: int
    keygen_seconds: float
    proving_seconds: float
    modeled_proof_bytes: int
    #: Wall-clock seconds per prover phase (commit/helpers/quotient/openings).
    phase_seconds: Dict[str, float] = dataclass_field(default_factory=dict)
    #: Whether keygen was skipped via the proving-key cache.
    pk_cache_hit: bool = False

    def verification_seconds(self, field: PrimeField = GOLDILOCKS) -> float:
        scheme = scheme_by_name(self.scheme_name, field)
        start = time.perf_counter()
        ok = verify_proof(self.vk, self.proof, self.instance, scheme)
        elapsed = time.perf_counter() - start
        if not ok:
            raise AssertionError("freshly created proof failed to verify")
        return elapsed


def prove_model(
    spec: ModelSpec,
    inputs: Dict[str, np.ndarray],
    scheme_name: str = "kzg",
    plan=None,
    num_cols: int = 10,
    scale_bits: int = 5,
    lookup_bits: Optional[int] = None,
    k: Optional[int] = None,
    field: PrimeField = GOLDILOCKS,
    jobs: Optional[int] = None,
    use_pk_cache: bool = True,
) -> ProveResult:
    """Synthesize, keygen, and prove one inference of a model.

    ``jobs`` fans independent prover work over worker processes (see
    ``repro.perf``); with ``use_pk_cache`` repeated proves of the same
    circuit skip keygen via the global proving-key cache.
    """
    result: SynthesizedModel = synthesize_model(
        spec, inputs, plan=plan, num_cols=num_cols, scale_bits=scale_bits,
        lookup_bits=lookup_bits, k=k,
    )
    for name in spec.outputs:
        result.builder.expose(result.outputs[name].entries())

    scheme = scheme_by_name(scheme_name, field)
    start = time.perf_counter()
    if use_pk_cache:
        pk, vk, pk_cache_hit = GLOBAL_PK_CACHE.get_or_create(
            result.builder.cs, result.builder.asg, scheme
        )
    else:
        pk, vk = keygen(result.builder.cs, result.builder.asg, scheme)
        pk_cache_hit = False
    keygen_seconds = time.perf_counter() - start

    timer = PhaseTimer()
    start = time.perf_counter()
    proof = create_proof(pk, result.builder.asg, scheme, jobs=jobs, timer=timer)
    proving_seconds = time.perf_counter() - start

    return ProveResult(
        spec_name=spec.name,
        scheme_name=scheme_name,
        proof=proof,
        vk=vk,
        instance=result.builder.asg.instance_values(),
        outputs=result.output_values(),
        num_cols=num_cols,
        k=result.builder.k,
        scale_bits=scale_bits,
        keygen_seconds=keygen_seconds,
        proving_seconds=proving_seconds,
        modeled_proof_bytes=proof.modeled_size_bytes(scheme, result.builder.k),
        phase_seconds=dict(timer.seconds),
        pk_cache_hit=pk_cache_hit,
    )


def verify_model_proof(
    vk: VerifyingKey,
    proof: Proof,
    instance: List[List[int]],
    scheme_name: str = "kzg",
    field: PrimeField = GOLDILOCKS,
) -> bool:
    """Verify a model proof against its public inputs."""
    scheme = scheme_by_name(scheme_name, field)
    return verify_proof(vk, proof, instance, scheme)


@dataclass
class BatchProveResult:
    """A single proof covering several inferences."""

    spec_name: str
    scheme_name: str
    proof: Proof
    vk: VerifyingKey
    instance: List[List[int]]
    batch_size: int
    k: int
    keygen_seconds: float
    proving_seconds: float
    modeled_proof_bytes: int
    outputs: List[Dict[str, np.ndarray]]
    #: Wall-clock seconds per prover phase (commit/helpers/quotient/openings).
    phase_seconds: Dict[str, float] = dataclass_field(default_factory=dict)

    def verify(self, field: PrimeField = GOLDILOCKS) -> bool:
        scheme = scheme_by_name(self.scheme_name, field)
        return verify_proof(self.vk, self.proof, self.instance, scheme)


def prove_batch(
    spec: ModelSpec,
    batch_inputs: List[Dict[str, np.ndarray]],
    scheme_name: str = "kzg",
    plan=None,
    num_cols: int = 10,
    scale_bits: int = 5,
    lookup_bits: Optional[int] = None,
    field: PrimeField = GOLDILOCKS,
    jobs: Optional[int] = None,
) -> BatchProveResult:
    """Prove several inferences of one model with a single proof.

    The batch shares the weight commitment and the lookup tables; each
    inference's outputs are exposed in its own instance column.
    """
    from repro.compiler import synthesize_batch

    result = synthesize_batch(
        spec, batch_inputs, plan=plan, num_cols=num_cols,
        scale_bits=scale_bits, lookup_bits=lookup_bits,
    )
    for outputs in result.outputs:
        for name in spec.outputs:
            result.builder.expose(outputs[name].entries())

    scheme = scheme_by_name(scheme_name, field)
    start = time.perf_counter()
    pk, vk = keygen(result.builder.cs, result.builder.asg, scheme)
    keygen_seconds = time.perf_counter() - start
    timer = PhaseTimer()
    start = time.perf_counter()
    proof = create_proof(pk, result.builder.asg, scheme, jobs=jobs, timer=timer)
    proving_seconds = time.perf_counter() - start

    return BatchProveResult(
        spec_name=spec.name,
        scheme_name=scheme_name,
        proof=proof,
        vk=vk,
        instance=result.builder.asg.instance_values(),
        batch_size=len(batch_inputs),
        k=result.builder.k,
        keygen_seconds=keygen_seconds,
        proving_seconds=proving_seconds,
        modeled_proof_bytes=proof.modeled_size_bytes(scheme,
                                                     result.builder.k),
        outputs=[result.output_values(i) for i in range(len(batch_inputs))],
        phase_seconds=dict(timer.seconds),
    )
