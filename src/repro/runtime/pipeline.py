"""The user-facing prove/verify pipeline (paper §8's two stages).

``prove_model`` synthesizes the circuit from a materialized model spec,
exposes the model outputs as public inputs, runs keygen and the prover,
and measures wall-clock times; ``verify_model_proof`` replays the
verifier.  Proof artifacts pickle cleanly for the CLI's file workflow.

Observability: every stage runs under a span on the active
:mod:`repro.obs` tracer (``prove_model -> synthesize -> layout/witness``,
``keygen``, ``prove -> commit/helpers/quotient/openings``, ``verify``),
and the run's operation counts (NTTs, commitments, hashes) are captured
as a delta over :data:`repro.obs.stats.STATS` together with the cost
model's *predicted* counts — the raw material for the
predicted-vs-actual report.  Passing a
:class:`~repro.obs.metrics.MetricsRegistry` additionally records circuit
shape statistics and per-phase timings.

Resilience: the synthesize/keygen/prove stages run under a
:class:`~repro.resilience.supervisor.Supervisor` — transient faults are
retried with backoff, a failed Freivalds challenge degrades the layout
plan to direct matmul (counted, never silent), and with
``checkpoint_dir`` each completed stage is persisted so an interrupted
run resumes from the last stage with **byte-identical** proof output.
``verify_model_proof`` is strict by default: malformed proofs raise
:class:`~repro.resilience.errors.ProofFormatError` and rejections raise
:class:`~repro.resilience.errors.VerificationFailure` instead of
returning ``False``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

import numpy as np

from repro.commit import scheme_by_name
from repro.envelope import (
    DEFAULT_CAPS,
    EnvelopeCaps,
    ProofEnvelope,
    decode_envelope,
    envelope_config_digest,
    is_envelope,
    verify_envelope,
)
from repro.compiler import SynthesizedModel, synthesize_model
from repro.compiler.logical import LayoutPlan
from repro.field import GOLDILOCKS, PrimeField
from repro.halo2 import Proof, VerifyingKey, create_proof, keygen, verify_proof
from repro.halo2.verifier import verify_proof_strict
from repro.layers.base import LayoutChoices
from repro.model.spec import ModelSpec
from repro.obs import metrics as obs_metrics
from repro.obs.stats import STATS
from repro.obs.trace import get_tracer
from repro.perf.pkcache import GLOBAL_PK_CACHE
from repro.perf.timer import PhaseTimer
from repro.resilience import events
from repro.resilience.checkpoint import CheckpointStore, proving_config_digest
from repro.resilience.errors import (
    FreivaldsCheckError,
    ProvingError,
    region_at,
)
from repro.resilience.supervisor import Supervisor


@dataclass
class ProveResult:
    """Everything a proving run produces."""

    spec_name: str
    scheme_name: str
    proof: Proof
    vk: VerifyingKey
    instance: List[List[int]]
    outputs: Dict[str, np.ndarray]
    num_cols: int
    k: int
    scale_bits: int
    keygen_seconds: float
    proving_seconds: float
    modeled_proof_bytes: int
    #: Wall-clock seconds per prover phase (commit/helpers/quotient/openings).
    phase_seconds: Dict[str, float] = dataclass_field(default_factory=dict)
    #: Peak process RSS in KB sampled at the end of each prover phase
    #: (monotone; empty off-POSIX).  ``zkml bench --mem`` reports it.
    phase_rss_kb: Dict[str, int] = dataclass_field(default_factory=dict)
    #: Whether keygen was skipped via the proving-key cache.
    pk_cache_hit: bool = False
    #: Operation counts observed during proving (NTTs, commitments, ...).
    observed_counts: Dict[str, int] = dataclass_field(default_factory=dict)
    #: The cost model's predicted counts for the same layout (Eqs. 1-2).
    predicted_counts: Dict[str, float] = dataclass_field(default_factory=dict)
    #: The synthesized circuit (regions, assignment), kept only when the
    #: caller passed ``keep_synthesized=True`` — the layer profiler needs
    #: it; everyone else gets ``None`` so results stay lightweight.
    synthesized: Optional[SynthesizedModel] = None
    #: Lookup-table bit width the circuit was built with (part of the
    #: envelope's config digest).
    lookup_bits: Optional[int] = None

    def envelope(self) -> ProofEnvelope:
        """Package this result as a v1 proof envelope (the consumer-facing
        format — see :mod:`repro.envelope`)."""
        from repro.halo2.proof import proof_to_bytes

        return ProofEnvelope(
            scheme_name=self.scheme_name,
            model=self.spec_name,
            vk_hash=self.vk.digest(),
            config_digest=envelope_config_digest(
                self.num_cols, self.scale_bits, self.k, self.lookup_bits),
            instance=self.instance,
            proof_bytes=proof_to_bytes(self.proof),
        )

    def envelope_bytes(self) -> bytes:
        """The canonical serialized envelope (what ``zkml prove`` emits)."""
        return self.envelope().encode()

    def verification_seconds(self, field: PrimeField = GOLDILOCKS) -> float:
        scheme = scheme_by_name(self.scheme_name, field)
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("verify", model=self.spec_name,
                         scheme=self.scheme_name):
            ok = verify_proof(self.vk, self.proof, self.instance, scheme)
        elapsed = time.perf_counter() - start
        if not ok:
            raise AssertionError("freshly created proof failed to verify")
        return elapsed

    def predicted_vs_actual(self) -> List[Dict[str, object]]:
        """Cost-model counts vs the counts this run actually performed."""
        return obs_metrics.predicted_vs_actual(self.predicted_counts,
                                               self.observed_counts)


def _normalize_plan(plan) -> LayoutPlan:
    if plan is None:
        return LayoutPlan(LayoutChoices())
    if isinstance(plan, LayoutChoices):
        return LayoutPlan(plan)
    return plan


def _plan_without_freivalds(plan: LayoutPlan) -> LayoutPlan:
    """The same plan with every Freivalds matmul replaced by direct."""

    def fix(choices: LayoutChoices) -> LayoutChoices:
        if choices.linear == "freivalds":
            return choices.replace(linear="dot_bias")
        return choices

    return LayoutPlan(fix(plan.base),
                      tuple((name, fix(c)) for name, c in plan.overrides))


def prove_model(
    spec: ModelSpec,
    inputs: Dict[str, np.ndarray],
    scheme_name: str = "kzg",
    plan=None,
    num_cols: int = 10,
    scale_bits: int = 5,
    lookup_bits: Optional[int] = None,
    k: Optional[int] = None,
    field: PrimeField = GOLDILOCKS,
    jobs: Optional[int] = None,
    use_pk_cache: bool = True,
    tracer=None,
    metrics=None,
    supervisor: Optional[Supervisor] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    keep_synthesized: bool = False,
) -> ProveResult:
    """Synthesize, keygen, and prove one inference of a model.

    ``jobs`` fans independent prover work over worker processes (see
    ``repro.perf``); with ``use_pk_cache`` repeated proves of the same
    circuit skip keygen via the global proving-key cache.  ``tracer``
    overrides the process tracer for this run; ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` that receives circuit
    statistics and prover operation counts.

    Every stage runs under ``supervisor`` (a default
    :class:`~repro.resilience.supervisor.Supervisor` if not given):
    transient faults retry with backoff, and a
    :class:`~repro.resilience.errors.FreivaldsCheckError` degrades the
    layout plan to direct matmul and re-synthesizes.  With
    ``checkpoint_dir``, each completed stage is persisted there;
    ``resume=True`` replays completed stages from disk (the checkpoint is
    bound to the full proving configuration, and a resumed run's proof is
    byte-identical to an uninterrupted one).
    """
    tracer = tracer if tracer is not None else get_tracer()
    sup = supervisor if supervisor is not None else Supervisor(tracer=tracer)
    plan_state = {"plan": _normalize_plan(plan)}

    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(
            checkpoint_dir,
            proving_config_digest(spec, inputs, scheme_name, num_cols,
                                  scale_bits, lookup_bits, k),
            resume=resume,
        )

    def _freivalds_fallback(exc: FreivaldsCheckError) -> None:
        plan_state["plan"] = _plan_without_freivalds(plan_state["plan"])
        events.degraded("freivalds_direct_matmul", layer=exc.layer,
                        model=spec.name)

    with tracer.span("prove_model", model=spec.name, scheme=scheme_name):
        def _synthesize() -> SynthesizedModel:
            with tracer.span("synthesize", model=spec.name):
                result = synthesize_model(
                    spec, inputs, plan=plan_state["plan"], num_cols=num_cols,
                    scale_bits=scale_bits, lookup_bits=lookup_bits, k=k,
                    tracer=tracer,
                )
                for name in spec.outputs:
                    result.builder.expose(result.outputs[name].entries())
                return result

        result, _ = sup.stage(
            store, "synthesize", _synthesize,
            recover={FreivaldsCheckError: _freivalds_fallback},
        )

        scheme = scheme_by_name(scheme_name, field)
        start = time.perf_counter()

        def _keygen():
            with tracer.span("keygen", model=spec.name, k=result.builder.k,
                             num_cols=num_cols, scheme=scheme_name) as sp:
                if use_pk_cache:
                    pk, vk, hit = GLOBAL_PK_CACHE.get_or_create(
                        result.builder.cs, result.builder.asg, scheme
                    )
                else:
                    pk, vk = keygen(result.builder.cs, result.builder.asg,
                                    scheme)
                    hit = False
                sp.set_attr("pk_cache_hit", hit)
                return pk, vk, hit

        (pk, vk, pk_cache_hit), _ = sup.stage(store, "keygen", _keygen)
        keygen_seconds = time.perf_counter() - start

        start = time.perf_counter()

        def _prove():
            timer = PhaseTimer(tracer)
            counts_before = STATS.snapshot()
            try:
                with tracer.span("prove", model=spec.name,
                                 k=result.builder.k, jobs=jobs or 1):
                    proof = create_proof(pk, result.builder.asg, scheme,
                                         jobs=jobs, timer=timer)
            except ProvingError as exc:
                row = exc.context.get("row")
                if row is not None and exc.region is None:
                    region = region_at(result.builder.regions, row)
                    if region is not None:
                        exc.with_context(
                            layer=region.name,
                            region="%s[%d:%d]" % (region.name, region.start,
                                                  region.end),
                        )
                raise
            return {"proof": proof, "phase_seconds": dict(timer.seconds),
                    "phase_rss_kb": dict(timer.rss_kb),
                    "observed": STATS.delta(counts_before)}

        prove_payload, _ = sup.stage(store, "prove", _prove)
        proof = prove_payload["proof"]
        phase_seconds = prove_payload["phase_seconds"]
        phase_rss_kb = prove_payload.get("phase_rss_kb", {})
        observed = prove_payload["observed"]
        proving_seconds = time.perf_counter() - start
        predicted = obs_metrics.predicted_counts(result.layout, scheme_name)

        if metrics is not None:
            obs_metrics.record_circuit_stats(metrics, result,
                                             model=spec.name)
            obs_metrics.record_prover_run(metrics, spec.name, observed,
                                          predicted,
                                          phase_seconds=phase_seconds)
            metrics.gauge("zkml_keygen_seconds", "keygen wall-clock",
                          model=spec.name).set(round(keygen_seconds, 6))
            metrics.gauge("zkml_prove_seconds", "prover wall-clock",
                          model=spec.name).set(round(proving_seconds, 6))
            metrics.gauge("zkml_pk_cache_hit", "1 if keygen was skipped",
                          model=spec.name).set(int(pk_cache_hit))

    return ProveResult(
        spec_name=spec.name,
        scheme_name=scheme_name,
        proof=proof,
        vk=vk,
        instance=result.builder.asg.instance_values(),
        outputs=result.output_values(),
        num_cols=num_cols,
        k=result.builder.k,
        scale_bits=scale_bits,
        keygen_seconds=keygen_seconds,
        proving_seconds=proving_seconds,
        modeled_proof_bytes=proof.modeled_size_bytes(scheme, result.builder.k),
        phase_seconds=dict(phase_seconds),
        phase_rss_kb=dict(phase_rss_kb),
        pk_cache_hit=pk_cache_hit,
        observed_counts=observed,
        predicted_counts=predicted,
        synthesized=result if keep_synthesized else None,
        lookup_bits=lookup_bits,
    )


def verify_model_proof(
    vk: VerifyingKey,
    proof,
    instance: Optional[List[List[int]]] = None,
    scheme_name: str = "kzg",
    field: PrimeField = GOLDILOCKS,
    strict: bool = True,
    caps: EnvelopeCaps = DEFAULT_CAPS,
) -> bool:
    """Verify a model proof against its public inputs.

    ``proof`` may be a :class:`~repro.halo2.Proof` object, a
    :class:`~repro.envelope.ProofEnvelope`, or raw bytes.  Envelope
    bytes (the v1 format every prove surface now emits) are decoded
    under ``caps`` and verified against their embedded public inputs —
    ``instance`` and ``scheme_name`` are taken from the envelope.
    Loose serialized proof bytes (the pre-envelope wire format) still
    verify but emit a :class:`DeprecationWarning`; wrap proofs in
    envelopes instead.

    Strict by default: a structurally invalid proof raises
    :class:`~repro.resilience.errors.ProofFormatError` (envelope
    violations raise its :class:`~repro.resilience.errors.EnvelopeError`
    subtypes) and a rejected one raises
    :class:`~repro.resilience.errors.VerificationFailure`, so the only
    falsy outcome is the legacy ``strict=False`` boolean path.
    """
    from repro.halo2.proof import proof_from_bytes
    from repro.resilience.errors import ProofFormatError

    if isinstance(proof, (bytes, bytearray, memoryview)):
        data = bytes(proof)
        if is_envelope(data):
            proof = decode_envelope(data, caps=caps)
        else:
            warnings.warn(
                "verifying loose proof bytes is deprecated; wrap proofs "
                "in a zkml-proof-envelope/v1 (repro.envelope) instead",
                DeprecationWarning, stacklevel=2)
            proof = proof_from_bytes(data)
    if isinstance(proof, ProofEnvelope):
        with get_tracer().span("verify", scheme=proof.scheme_name,
                               envelope=True):
            return verify_envelope(proof, vk, field=field, strict=strict)
    if instance is None:
        raise ProofFormatError(
            "instance values are required to verify a loose proof "
            "(envelopes carry their own public inputs)")
    scheme = scheme_by_name(scheme_name, field)
    with get_tracer().span("verify", scheme=scheme_name):
        if strict:
            verify_proof_strict(vk, proof, instance, scheme)
            return True
        return verify_proof(vk, proof, instance, scheme)


@dataclass
class BatchProveResult:
    """A single proof covering several inferences."""

    spec_name: str
    scheme_name: str
    proof: Proof
    vk: VerifyingKey
    instance: List[List[int]]
    batch_size: int
    k: int
    keygen_seconds: float
    proving_seconds: float
    modeled_proof_bytes: int
    outputs: List[Dict[str, np.ndarray]]
    #: Wall-clock seconds per prover phase (commit/helpers/quotient/openings).
    phase_seconds: Dict[str, float] = dataclass_field(default_factory=dict)
    #: Whether keygen was skipped via the proving-key cache.
    keygen_cache_hit: bool = False
    #: Operation counts observed during proving (NTTs, commitments, ...).
    observed_counts: Dict[str, int] = dataclass_field(default_factory=dict)
    #: The cost model's predicted counts for the batch layout (Eqs. 1-2).
    predicted_counts: Dict[str, float] = dataclass_field(default_factory=dict)
    #: Grid/scale configuration the batch circuit was built with (part of
    #: the envelope's config digest; defaults match ``prove_batch``'s).
    num_cols: int = 10
    scale_bits: int = 5
    lookup_bits: Optional[int] = None

    def envelope(self) -> ProofEnvelope:
        """Package the batch proof as a v1 envelope (one envelope covers
        the whole batch — its instance holds every slot's columns)."""
        from repro.halo2.proof import proof_to_bytes

        return ProofEnvelope(
            scheme_name=self.scheme_name,
            model=self.spec_name,
            vk_hash=self.vk.digest(),
            config_digest=envelope_config_digest(
                self.num_cols, self.scale_bits, self.k, self.lookup_bits),
            instance=self.instance,
            proof_bytes=proof_to_bytes(self.proof),
        )

    def envelope_bytes(self) -> bytes:
        return self.envelope().encode()

    @property
    def slot_proving_seconds(self) -> float:
        """Proving wall-clock amortized over the batch's inference slots —
        the honest per-inference cost of a coalesced proof."""
        return self.proving_seconds / max(1, self.batch_size)

    def verify(self, field: PrimeField = GOLDILOCKS,
               strict: bool = True) -> bool:
        """Verify the batch proof against all per-inference instances.

        Strict by default, mirroring :func:`verify_model_proof`: a
        malformed proof raises
        :class:`~repro.resilience.errors.ProofFormatError` and a rejected
        one raises
        :class:`~repro.resilience.errors.VerificationFailure`;
        ``strict=False`` restores the legacy boolean path.
        """
        scheme = scheme_by_name(self.scheme_name, field)
        with get_tracer().span("verify", model=self.spec_name,
                               scheme=self.scheme_name,
                               batch_size=self.batch_size):
            if strict:
                verify_proof_strict(self.vk, self.proof, self.instance,
                                    scheme)
                return True
            return verify_proof(self.vk, self.proof, self.instance, scheme)


def prove_batch(
    spec: ModelSpec,
    batch_inputs: List[Dict[str, np.ndarray]],
    scheme_name: str = "kzg",
    plan=None,
    num_cols: int = 10,
    scale_bits: int = 5,
    lookup_bits: Optional[int] = None,
    field: PrimeField = GOLDILOCKS,
    jobs: Optional[int] = None,
    use_pk_cache: bool = True,
    tracer=None,
    metrics=None,
    supervisor: Optional[Supervisor] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> BatchProveResult:
    """Prove several inferences of one model with a single proof.

    The batch shares the weight commitment and the lookup tables; each
    inference's outputs are exposed in its own instance column.

    The batch path runs under the same hardening as :func:`prove_model`:
    keygen consults the global proving-key cache (the circuit digest
    covers the batch shape, so equal-occupancy batches share keys —
    ``keygen_cache_hit`` reports a skip), every stage runs under a
    :class:`~repro.resilience.supervisor.Supervisor` (transient faults
    retry, a failed Freivalds challenge degrades the plan to direct
    matmul), and ``checkpoint_dir``/``resume`` persist and replay
    completed stages exactly like the single-proof pipeline.
    """
    from repro.compiler import synthesize_batch
    from repro.resilience.checkpoint import batch_proving_config_digest

    tracer = tracer if tracer is not None else get_tracer()
    sup = supervisor if supervisor is not None else Supervisor(tracer=tracer)
    plan_state = {"plan": _normalize_plan(plan)}

    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(
            checkpoint_dir,
            batch_proving_config_digest(spec, batch_inputs, scheme_name,
                                        num_cols, scale_bits, lookup_bits),
            resume=resume,
        )

    def _freivalds_fallback(exc: FreivaldsCheckError) -> None:
        plan_state["plan"] = _plan_without_freivalds(plan_state["plan"])
        events.degraded("freivalds_direct_matmul", layer=exc.layer,
                        model=spec.name)

    with tracer.span("prove_batch", model=spec.name, scheme=scheme_name,
                     batch_size=len(batch_inputs)):
        def _synthesize():
            with tracer.span("synthesize", model=spec.name,
                             batch_size=len(batch_inputs)):
                result = synthesize_batch(
                    spec, batch_inputs, plan=plan_state["plan"],
                    num_cols=num_cols, scale_bits=scale_bits,
                    lookup_bits=lookup_bits, tracer=tracer,
                )
                for outputs in result.outputs:
                    for name in spec.outputs:
                        result.builder.expose(outputs[name].entries())
                return result

        result, _ = sup.stage(
            store, "synthesize", _synthesize,
            recover={FreivaldsCheckError: _freivalds_fallback},
        )

        scheme = scheme_by_name(scheme_name, field)
        start = time.perf_counter()

        def _keygen():
            with tracer.span("keygen", model=spec.name, k=result.builder.k,
                             scheme=scheme_name) as sp:
                if use_pk_cache:
                    pk, vk, hit = GLOBAL_PK_CACHE.get_or_create(
                        result.builder.cs, result.builder.asg, scheme
                    )
                else:
                    pk, vk = keygen(result.builder.cs, result.builder.asg,
                                    scheme)
                    hit = False
                sp.set_attr("pk_cache_hit", hit)
                return pk, vk, hit

        (pk, vk, keygen_cache_hit), _ = sup.stage(store, "keygen", _keygen)
        keygen_seconds = time.perf_counter() - start

        start = time.perf_counter()

        def _prove():
            timer = PhaseTimer(tracer)
            counts_before = STATS.snapshot()
            with tracer.span("prove", model=spec.name, k=result.builder.k,
                             jobs=jobs or 1, batch_size=len(batch_inputs)):
                proof = create_proof(pk, result.builder.asg, scheme,
                                     jobs=jobs, timer=timer)
            return {"proof": proof, "phase_seconds": dict(timer.seconds),
                    "observed": STATS.delta(counts_before)}

        prove_payload, _ = sup.stage(store, "prove", _prove)
        proof = prove_payload["proof"]
        # .get(): a checkpoint written before op counts were captured
        # resumes cleanly with empty counts rather than a KeyError
        observed = prove_payload.get("observed", {})
        proving_seconds = time.perf_counter() - start
        predicted = obs_metrics.predicted_counts(result.layout, scheme_name)

        if metrics is not None:
            obs_metrics.record_circuit_stats(metrics, result,
                                             model=spec.name)
            obs_metrics.record_prover_run(metrics, spec.name, observed,
                                          predicted,
                                          phase_seconds=prove_payload[
                                              "phase_seconds"],
                                          slots=len(batch_inputs))
            metrics.gauge("zkml_keygen_seconds", "keygen wall-clock",
                          model=spec.name).set(round(keygen_seconds, 6))
            metrics.gauge("zkml_prove_seconds", "prover wall-clock",
                          model=spec.name).set(round(proving_seconds, 6))
            metrics.gauge("zkml_pk_cache_hit", "1 if keygen was skipped",
                          model=spec.name).set(int(keygen_cache_hit))

    return BatchProveResult(
        spec_name=spec.name,
        scheme_name=scheme_name,
        proof=proof,
        vk=vk,
        instance=result.builder.asg.instance_values(),
        batch_size=len(batch_inputs),
        k=result.builder.k,
        keygen_seconds=keygen_seconds,
        proving_seconds=proving_seconds,
        modeled_proof_bytes=proof.modeled_size_bytes(scheme,
                                                     result.builder.k),
        outputs=[result.output_values(i) for i in range(len(batch_inputs))],
        phase_seconds=dict(prove_payload["phase_seconds"]),
        keygen_cache_hit=keygen_cache_hit,
        observed_counts=dict(observed),
        predicted_counts=predicted,
        num_cols=num_cols,
        scale_bits=scale_bits,
        lookup_bits=lookup_bits,
    )
