"""Paper-style end-to-end estimates for full-scale models.

Bundles the optimizer and the cost model into one call that produces the
row a Table 6/7 benchmark prints: proving time, verification time, and
proof size for a zoo model on its paper hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.zoo import get_model
from repro.optimizer import (
    HardwareProfile,
    OptimizationResult,
    optimize_layout,
    resolve_profile,
)


@dataclass
class EndToEndEstimate:
    """One row of a Table 6/7-style report."""

    model: str
    scheme_name: str
    hardware: str
    num_cols: int
    k: int
    proving_seconds: float
    verification_seconds: float
    proof_bytes: int
    optimizer_seconds: float
    result: OptimizationResult

    def row(self) -> str:
        return "%-10s %8.1f s %12.4f s %10d bytes  (%d cols x 2^%d)" % (
            self.model, self.proving_seconds, self.verification_seconds,
            self.proof_bytes, self.num_cols, self.k,
        )


def estimate_model(
    name: str,
    scheme_name: str = "kzg",
    scale_bits: int = 12,
    hardware: Optional[HardwareProfile] = None,
    objective: str = "time",
    include_freivalds: bool = False,
    **kwargs,
) -> EndToEndEstimate:
    """Optimize a paper-scale zoo model and report the modeled costs.

    ``include_freivalds`` defaults to False to mirror the configurations
    the paper reports; pass True for the best our gadget set can do.
    """
    spec = get_model(name, "paper")
    # resolve_profile honors ZKML_HW_PROFILE, so a calibrated profile
    # written by ``zkml calibrate`` replaces the static AWS default.
    hardware = hardware or resolve_profile(model_name=name)
    result = optimize_layout(
        spec, hardware, scheme_name=scheme_name, scale_bits=scale_bits,
        objective=objective, include_freivalds=include_freivalds, **kwargs,
    )
    return EndToEndEstimate(
        model=name,
        scheme_name=scheme_name,
        hardware=hardware.name,
        num_cols=result.layout.num_cols,
        k=result.layout.k,
        proving_seconds=result.proving_time,
        verification_seconds=result.verification_time,
        proof_bytes=result.proof_size,
        optimizer_seconds=result.runtime_seconds,
        result=result,
    )
