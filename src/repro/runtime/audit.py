"""End-to-end trustless audits (paper §2, Figures 1-2).

The paper's audit flow: the service provider *commits* to a model (hash
of weights + architecture), serves users while logging each inference
with a ZK-SNARK, and an auditor later checks that (a) every proof
verifies, (b) every proof is bound to the same committed model, and (c)
the published outputs match the proven public values.  The paper pairs
this with a trusted input log (e.g. a verified database [47]); here the
input binding is a hash chain over the logged requests.

This module packages that flow:

- :class:`ModelCommitment` — a binding digest of architecture + weights.
- :class:`AuditLog` — the provider side: prove-and-append entries.
- :func:`audit` — the auditor side: replay and verify everything.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.model.spec import ModelSpec
from repro.runtime.pipeline import ProveResult, prove_model, verify_model_proof


def _hash_array(h, arr) -> None:
    arr = np.asarray(arr, dtype=np.float64)
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


@dataclass(frozen=True)
class ModelCommitment:
    """A binding digest of a model's architecture and weights."""

    digest: bytes

    @classmethod
    def commit(cls, spec: ModelSpec) -> "ModelCommitment":
        if not spec.materialized:
            raise ValueError("cannot commit to shape-only parameters")
        h = hashlib.blake2b(b"zkml-model-commitment", digest_size=32)
        h.update(spec.name.encode())
        for layer in spec.layers:
            h.update(layer.name.encode())
            h.update(layer.kind.encode())
            h.update(repr(sorted(layer.attrs.items())).encode())
            for pname in sorted(layer.params):
                h.update(pname.encode())
                _hash_array(h, layer.params[pname])
        return cls(h.digest())

    def hex(self) -> str:
        return self.digest.hex()


@dataclass
class AuditEntry:
    """One logged inference: inputs digest, proof, and public outputs."""

    index: int
    input_digest: bytes
    chain_digest: bytes
    result: ProveResult
    timestamp: float


@dataclass
class AuditFinding:
    """One problem an audit discovered."""

    index: int
    kind: str  # 'proof' | 'model' | 'chain'
    detail: str

    def __str__(self) -> str:
        return "entry %d: %s (%s)" % (self.index, self.kind, self.detail)


class AuditLog:
    """The provider-side log: prove every served inference and chain it."""

    def __init__(self, spec: ModelSpec, scheme_name: str = "kzg",
                 num_cols: int = 10, scale_bits: int = 5,
                 lookup_bits: Optional[int] = None):
        self.spec = spec
        self.scheme_name = scheme_name
        self.num_cols = num_cols
        self.scale_bits = scale_bits
        self.lookup_bits = lookup_bits
        self.commitment = ModelCommitment.commit(spec)
        self.entries: List[AuditEntry] = []

    def _digest_inputs(self, inputs: Dict[str, np.ndarray]) -> bytes:
        h = hashlib.blake2b(b"zkml-audit-input", digest_size=32)
        for name in sorted(inputs):
            h.update(name.encode())
            _hash_array(h, inputs[name])
        return h.digest()

    def serve(self, inputs: Dict[str, np.ndarray]) -> AuditEntry:
        """Run one inference, prove it, and append to the chained log."""
        result = prove_model(
            self.spec, inputs, scheme_name=self.scheme_name,
            num_cols=self.num_cols, scale_bits=self.scale_bits,
            lookup_bits=self.lookup_bits,
        )
        input_digest = self._digest_inputs(inputs)
        prev = self.entries[-1].chain_digest if self.entries else b"\x00" * 32
        chain = hashlib.blake2b(
            prev + input_digest + result.vk.digest(), digest_size=32
        ).digest()
        entry = AuditEntry(
            index=len(self.entries),
            input_digest=input_digest,
            chain_digest=chain,
            result=result,
            timestamp=time.time(),
        )
        self.entries.append(entry)
        return entry


def audit(log: AuditLog,
          expected_commitment: ModelCommitment) -> List[AuditFinding]:
    """The auditor: verify every entry of a log against a commitment.

    Returns the list of findings; an empty list means the log is clean.
    The auditor needs only public data: the verifying keys, proofs,
    public values, and the model commitment — never the weights.
    """
    findings: List[AuditFinding] = []
    if log.commitment.digest != expected_commitment.digest:
        findings.append(AuditFinding(
            index=-1, kind="model",
            detail="log's model commitment does not match the published one",
        ))
    vk_digests = set()
    prev = b"\x00" * 32
    for entry in log.entries:
        result = entry.result
        if not verify_model_proof(result.vk, result.proof, result.instance,
                                  log.scheme_name, strict=False):
            findings.append(AuditFinding(
                index=entry.index, kind="proof",
                detail="ZK-SNARK failed verification",
            ))
        vk_digests.add(result.vk.digest())
        expected_chain = hashlib.blake2b(
            prev + entry.input_digest + result.vk.digest(), digest_size=32
        ).digest()
        if entry.chain_digest != expected_chain:
            findings.append(AuditFinding(
                index=entry.index, kind="chain",
                detail="hash chain broken (entry reordered or dropped)",
            ))
        prev = entry.chain_digest
    if len(vk_digests) > 1:
        findings.append(AuditFinding(
            index=-1, kind="model",
            detail="entries proven under %d different circuits"
            % len(vk_digests),
        ))
    return findings
