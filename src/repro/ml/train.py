"""A from-scratch numpy MLP classifier with SGD + manual backprop."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.model.builder import GraphBuilder
from repro.model.spec import ModelSpec


class MLPClassifier:
    """ReLU MLP with softmax cross-entropy, trained by minibatch SGD."""

    def __init__(self, layer_dims: List[int], seed: int = 0):
        if len(layer_dims) < 2:
            raise ValueError("need at least input and output dims")
        self.dims = list(layer_dims)
        rng = np.random.default_rng(seed)
        self.weights = [
            rng.normal(0, np.sqrt(2.0 / layer_dims[i]),
                       (layer_dims[i], layer_dims[i + 1]))
            for i in range(len(layer_dims) - 1)
        ]
        self.biases = [np.zeros(d) for d in layer_dims[1:]]

    # -- forward/backward ------------------------------------------------------

    def _forward(self, x: np.ndarray):
        acts = [x]
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = acts[-1] @ w + b
            if i < len(self.weights) - 1:
                z = np.maximum(z, 0.0)
            acts.append(z)
        return acts

    def logits(self, x: np.ndarray) -> np.ndarray:
        return self._forward(self._flat(x))[-1]

    @staticmethod
    def _flat(x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64).reshape(len(x), -1)

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 30,
            lr: float = 0.05, batch: int = 32, seed: int = 0) -> "MLPClassifier":
        x = self._flat(x)
        y = np.asarray(y)
        rng = np.random.default_rng(seed)
        n = len(x)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                acts = self._forward(x[idx])
                logits = acts[-1]
                shifted = logits - logits.max(axis=1, keepdims=True)
                probs = np.exp(shifted)
                probs /= probs.sum(axis=1, keepdims=True)
                grad = probs
                grad[np.arange(len(idx)), y[idx]] -= 1.0
                grad /= len(idx)
                for i in range(len(self.weights) - 1, -1, -1):
                    a_prev = acts[i]
                    gw = a_prev.T @ grad
                    gb = grad.sum(axis=0)
                    if i > 0:
                        grad = (grad @ self.weights[i].T) * (acts[i] > 0)
                    self.weights[i] -= lr * gw
                    self.biases[i] -= lr * gb
        return self

    # -- evaluation -----------------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.logits(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())

    # -- export to the compiler's IR ---------------------------------------------------

    def to_model_spec(self, name: str, input_shape: Tuple[int, ...],
                      softmax: bool = False) -> ModelSpec:
        """Export the trained weights as a runnable ModelSpec."""
        gb = GraphBuilder(name, materialize=True)
        x = gb.input("image", input_shape)
        if len(input_shape) > 1:
            x = gb.flatten(x)
        x = gb.reshape(x, (1, self.dims[0]))
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            x = gb.add_layer(
                "fully_connected", [x], {"units": self.dims[i + 1]},
                {"weight": w.copy(), "bias": b.copy()}, name="fc%d" % i
            )
            if i < len(self.weights) - 1:
                x = gb.activation(x, "relu", name="relu%d" % i)
        if softmax:
            x = gb.softmax(x)
        return gb.build([x])
