"""Procedurally generated classification datasets.

Each class is a smooth random template plus per-sample noise and a random
shift — hard enough that accuracy is not trivially 100%, easy enough that
a small MLP reaches the high-90s like the paper's MNIST model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _templates(num_classes: int, side: int, channels: int,
               rng: np.random.Generator) -> np.ndarray:
    base = rng.normal(0, 1, (num_classes, side + 2, side + 2, channels))
    # smooth with a 3x3 box filter to create digit-like blobs
    smoothed = np.zeros((num_classes, side, side, channels))
    for di in range(3):
        for dj in range(3):
            smoothed += base[:, di : di + side, dj : dj + side, :]
    smoothed /= 9.0
    return smoothed


def _make_dataset(n: int, num_classes: int, side: int, channels: int,
                  noise: float, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    # class templates are fixed per dataset family so different-seed draws
    # (train/test splits) come from the same distribution
    template_rng = np.random.default_rng(10_000 + side * 97 + channels)
    templates = _templates(num_classes, side, channels, template_rng)
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, n)
    images = np.empty((n, side, side, channels))
    for i, label in enumerate(labels):
        img = templates[label].copy()
        # random circular shift (translation jitter)
        img = np.roll(img, rng.integers(-1, 2), axis=0)
        img = np.roll(img, rng.integers(-1, 2), axis=1)
        img += rng.normal(0, noise, img.shape)
        images[i] = img
    images = np.clip(images, -2.0, 2.0)
    return images.astype(np.float64), labels.astype(np.int64)


def synthetic_digits(n: int = 500, side: int = 8, seed: int = 0):
    """An MNIST substitute: 10 classes of noisy 8x8 grayscale blobs."""
    return _make_dataset(n, num_classes=10, side=side, channels=1,
                         noise=0.25, seed=seed)


def synthetic_cifar(n: int = 500, side: int = 10, seed: int = 1):
    """A CIFAR-10 substitute: 10 classes of noisier 3-channel patches."""
    return _make_dataset(n, num_classes=10, side=side, channels=3,
                         noise=0.55, seed=seed)
