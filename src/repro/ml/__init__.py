"""Minimal numpy ML substrate: synthetic datasets and an MLP trainer.

The paper's Table 8 measures the accuracy drop from arithmetization on
trained MNIST/CIFAR-10 checkpoints.  Offline we have neither the datasets
nor a training framework, so this package supplies the substitute: a
procedural "digits" dataset generator and a from-scratch SGD-trained MLP
whose weights export straight into a :class:`~repro.model.ModelSpec`.
"""

from repro.ml.datasets import synthetic_cifar, synthetic_digits
from repro.ml.train import MLPClassifier

__all__ = ["synthetic_digits", "synthetic_cifar", "MLPClassifier"]
