"""The proving-cost model (paper §7.4, Eqs. 1–2).

For a physical layout with 2^k rows, the dominant proving costs are:

- FFTs:  ``n_FFT = N_i + N_a + 3*N_lk + (N_pm + d_max - 3)/(d_max - 2)``
  base-size FFTs plus ``n'_FFT = n_FFT + 1`` extended-size FFTs, where the
  extended size is ``k' = k + log2(d_max - 1)`` (the quotient coset);
- MSMs:  ``n_FFT + d_max - 1`` (KZG) or ``n_FFT + d_max`` (IPA) MSMs of
  size 2^k — the commitments to every column polynomial plus the quotient
  pieces and evaluation proof;
- lookup-column construction, one pass per lookup argument;
- residual field operations (constraint evaluation on the extended coset).

The same shape statistics also give the modeled verification time and
proof size per backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.commit.scheme import COMMITMENT_BYTES, SCALAR_BYTES
from repro.compiler.physical import PhysicalLayout
from repro.optimizer.hardware import HardwareProfile


@dataclass(frozen=True)
class CostBreakdown:
    """Estimated proving cost, itemized (seconds)."""

    fft: float
    msm: float
    lookup: float
    residual: float

    @property
    def total(self) -> float:
        return self.fft + self.msm + self.lookup + self.residual


def num_ffts(layout: PhysicalLayout) -> float:
    """Eq. (2): the number of base-size FFTs."""
    d = layout.d_max
    return (
        layout.num_instance
        + layout.num_advice
        + 3 * layout.num_lookups
        + (layout.num_permutation_columns + d - 3) / (d - 2)
    )


def extended_k(layout: PhysicalLayout) -> int:
    """k' = k + log2(d_max - 1), the quotient coset size."""
    return layout.k + max(int(math.ceil(math.log2(layout.d_max - 1))), 1)


def num_msms(layout: PhysicalLayout, scheme_name: str) -> float:
    """n_MSM = n_FFT + d_max - 1 (KZG) or + d_max (IPA)."""
    extra = layout.d_max - 1 if scheme_name == "kzg" else layout.d_max
    return num_ffts(layout) + extra


def estimate_cost(
    layout: PhysicalLayout,
    hardware: HardwareProfile,
    scheme_name: str = "kzg",
) -> CostBreakdown:
    """Eq. (1) plus the MSM/lookup/residual terms."""
    n_fft = num_ffts(layout)
    k, k_ext = layout.k, extended_k(layout)
    fft_cost = n_fft * hardware.fft(k) + (n_fft + 1) * hardware.fft(k_ext)
    msm_cost = num_msms(layout, scheme_name) * hardware.msm(k)
    lookup_cost = layout.num_lookups * hardware.lookup(k)
    # residual: evaluating every constraint on the extended coset
    constraints = layout.num_selectors + layout.num_lookups * 3 + (
        layout.num_permutation_columns + 2
    )
    residual = hardware.t_field * constraints * (1 << k_ext)
    return CostBreakdown(fft=fft_cost, msm=msm_cost, lookup=lookup_cost,
                         residual=residual)


def estimate_verification_time(
    layout: PhysicalLayout,
    hardware: HardwareProfile,
    scheme_name: str = "kzg",
) -> float:
    """Modeled verification latency.

    KZG verifies with a constant number of pairings plus per-evaluation
    field work; IPA must recompute the folded commitment basis — O(n)
    group operations — which is why its verification is seconds rather
    than milliseconds at large k (Table 7).
    """
    evals = num_ffts(layout) + layout.d_max
    pairing_seconds = 2.5e-3  # one pairing check, amortized
    field_work = hardware.t_field * 600 * evals
    instance_work = hardware.t_field * 40 * sum(
        _shape_size(s) for s in layout.spec.inputs.values()
    )
    if scheme_name == "kzg":
        return pairing_seconds + field_work + instance_work
    group_op = 3.5e-7  # one elliptic-curve group operation
    return group_op * (1 << layout.k) + field_work + instance_work


def _shape_size(shape) -> int:
    out = 1
    for s in shape:
        out *= s
    return out


def estimate_proof_size(layout: PhysicalLayout, scheme_name: str = "kzg") -> int:
    """Modeled proof bytes: commitments + evaluations + multiopen argument."""
    commitments = (
        layout.num_advice          # advice columns
        + 3 * layout.num_lookups   # lookup argument columns
        + _perm_products(layout)   # permutation grand products
        + layout.d_max - 1         # quotient pieces
    )
    evaluations = num_ffts(layout) + layout.d_max + layout.num_fixed
    if scheme_name == "kzg":
        opening = 2 * SCALAR_BYTES
    else:
        opening = 2 * layout.k * SCALAR_BYTES + 2 * SCALAR_BYTES
    return int(
        COMMITMENT_BYTES * commitments
        + SCALAR_BYTES * evaluations
        + opening
    )


def _perm_products(layout: PhysicalLayout) -> int:
    d = layout.d_max
    return math.ceil(layout.num_permutation_columns / max(d - 2, 1))
