"""Cost-model auto-calibration (the engine behind ``zkml calibrate``).

The static ``R6I_*`` profiles model the paper's AWS boxes running an
optimized C++/Rust prover — on *this* machine running *this* Python
prover their absolute predictions are off by orders of magnitude, which
is fine for the paper's rank-correlation experiments but useless for
"how long will this prove take here?".  Calibration closes the gap:

1. microbenchmark NTT, MSM (commitment), and lookup-helper construction
   at several k (:func:`~repro.optimizer.hardware.benchmark_operations`),
2. fit the §7.4 scaling laws ``t_FFT(k) = c·k·2^k`` and
   ``t_MSM(k) = c·2^k`` through the measured points (geometric-mean fit,
   so every point weighs equally in log space),
3. write a ``zkml-hardware-profile/v1`` JSON the optimizer and cost
   model load in place of the static default (via ``--hardware`` or the
   ``ZKML_HW_PROFILE`` environment variable),
4. prove a small probe model and report **drift** — |ln(predicted /
   actual)| — under the static default vs the calibrated profile, into
   the metrics registry (:func:`~repro.obs.metrics.record_costmodel_drift`).

A calibration is accepted only if it reduces probe drift versus the
static default; the report says so either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.field import GOLDILOCKS, PrimeField
from repro.obs.metrics import MetricsRegistry, record_costmodel_drift
from repro.optimizer.cost_model import estimate_cost
from repro.optimizer.hardware import (
    HardwareProfile,
    benchmark_operations,
    profile_for_model,
    save_profile,
)

__all__ = ["CalibrationResult", "calibrate_hardware", "probe_drift",
           "fit_scaling"]

#: Default microbenchmark sizes (2^8 .. 2^12 keeps calibration < 10 s).
DEFAULT_KS = (8, 9, 10, 11, 12)

#: k range the fitted curves are tabulated over (covers every mini-scale
#: circuit and the extrapolation head-room the interpolator wants).
FILL_K = (6, 22)


def _basis(op: str, k: int) -> float:
    """The §7.4 scaling law each operation is fitted against."""
    if op == "fft":
        return float(k) * (1 << k)
    return float(1 << k)  # msm and lookup are linear in 2^k


def fit_scaling(measured: Dict[int, float], op: str
                ) -> Tuple[float, Dict[int, float]]:
    """Fit ``t(k) = c · basis(k)`` through measured points.

    Returns ``(c, residuals)`` where ``c`` is the geometric mean of the
    per-point ratios (equal weight in log space — a slow size-2^8 outlier
    can't dominate the 2^12 point) and ``residuals[k]`` is
    ``measured / fitted`` per point (1.0 = perfect fit).
    """
    if not measured:
        raise ValueError("cannot fit %s: no measured points" % op)
    ratios = {k: t / _basis(op, k) for k, t in measured.items() if t > 0}
    if not ratios:
        raise ValueError("cannot fit %s: all measurements were zero" % op)
    c = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
    residuals = {k: measured[k] / (c * _basis(op, k)) for k in ratios}
    return c, residuals


def _fill_table(measured: Dict[int, float], c: float, op: str,
                k_range: Tuple[int, int]) -> Dict[int, float]:
    """Tabulate the fitted curve, keeping measured points exact."""
    lo, hi = k_range
    table = {k: c * _basis(op, k) for k in range(lo, hi + 1)}
    table.update(measured)
    return table


@dataclass
class CalibrationResult:
    """A fitted hardware profile plus its provenance."""

    profile: HardwareProfile
    #: op -> fitted constant c in t(k) = c * basis(k).
    constants: Dict[str, float]
    #: op -> {k: measured/fitted} — fit quality per benchmark point.
    residuals: Dict[str, Dict[int, float]]
    #: op -> raw measured seconds per k.
    measured: Dict[str, Dict[int, float]]
    ks: Tuple[int, ...] = ()
    scheme: str = "kzg"
    #: Filled by :func:`probe_drift` when a probe prove was run.
    drift: Dict[str, object] = dataclass_field(default_factory=dict)

    def meta(self) -> Dict:
        """Provenance dict stored in the profile JSON's ``meta`` field."""
        return {
            "calibrated": True,
            "scheme": self.scheme,
            "benchmark_ks": list(self.ks),
            "constants": {op: float("%.6g" % c)
                          for op, c in sorted(self.constants.items())},
            "residuals": {
                op: {str(k): round(r, 4) for k, r in sorted(res.items())}
                for op, res in sorted(self.residuals.items())
            },
            "drift": self.drift,
        }

    def save(self, path: str) -> None:
        save_profile(self.profile, path, meta=self.meta())

    def render(self) -> str:
        lines = ["calibrated profile %r (scheme=%s, ks=%s)"
                 % (self.profile.name, self.scheme, list(self.ks))]
        for op in ("fft", "msm", "lookup"):
            res = self.residuals[op]
            worst = max(res.values(), default=1.0)
            best = min(res.values(), default=1.0)
            lines.append(
                "  t_%-6s c=%.3e s  fit residuals %.2fx..%.2fx"
                % (op, self.constants[op], best, worst))
        lines.append("  t_field %.3e s" % self.profile.t_field)
        if self.drift:
            lines.append(
                "  probe %s: actual %.3fs | static predicts %.3fs "
                "(drift %.2f) | calibrated predicts %.3fs (drift %.2f) -> %s"
                % (self.drift["model"], self.drift["actual_seconds"],
                   self.drift["static_predicted_seconds"],
                   self.drift["static_drift"],
                   self.drift["calibrated_predicted_seconds"],
                   self.drift["calibrated_drift"],
                   "improved" if self.drift["improved"] else
                   "NOT improved"))
        return "\n".join(lines)


def calibrate_hardware(
    field: PrimeField = GOLDILOCKS,
    ks: Sequence[int] = DEFAULT_KS,
    scheme_name: str = "kzg",
    name: str = "local-calibrated",
    cores: int = 1,
    ram_gb: int = 16,
) -> CalibrationResult:
    """Microbenchmark this machine and fit the §7.4 curves through it."""
    bench = benchmark_operations(field, ks=tuple(ks),
                                 scheme_name=scheme_name)
    measured = {"fft": dict(bench.t_fft), "msm": dict(bench.t_msm),
                "lookup": dict(bench.t_lookup)}
    constants: Dict[str, float] = {}
    residuals: Dict[str, Dict[int, float]] = {}
    tables: Dict[str, Dict[int, float]] = {}
    for op in ("fft", "msm", "lookup"):
        c, res = fit_scaling(measured[op], op)
        constants[op] = c
        residuals[op] = res
        tables[op] = _fill_table(measured[op], c, op, FILL_K)
    profile = HardwareProfile(
        name=name,
        cores=cores,
        ram_gb=ram_gb,
        t_fft=tables["fft"],
        t_msm=tables["msm"],
        t_lookup=tables["lookup"],
        t_field=bench.t_field,
    )
    return CalibrationResult(
        profile=profile,
        constants=constants,
        residuals=residuals,
        measured=measured,
        ks=tuple(ks),
        scheme=scheme_name,
    )


def probe_drift(
    calibration: CalibrationResult,
    probe_model: str = "mnist",
    scheme_name: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """Prove a small probe and measure prediction drift both ways.

    Runs one real (mini-scale) prove, prices its *actual* physical layout
    under (a) the static paper default for that model and (b) the
    calibrated profile, and records |ln(predicted/actual)| for each via
    :func:`~repro.obs.metrics.record_costmodel_drift`.  The result dict
    (also stored on ``calibration.drift``) says whether calibration
    improved the prediction — the acceptance gate for writing a profile.
    """
    from repro.model import get_model
    from repro.runtime.pipeline import prove_model

    scheme_name = scheme_name or calibration.scheme
    spec = get_model(probe_model, "mini")
    rng = np.random.default_rng(seed)
    inputs = {n: rng.uniform(-0.5, 0.5, shape)
              for n, shape in spec.inputs.items()}
    result = prove_model(spec, inputs, scheme_name=scheme_name,
                        use_pk_cache=False, keep_synthesized=True)
    layout = result.synthesized.layout
    actual = result.proving_seconds

    static_profile = profile_for_model(probe_model)
    static_pred = estimate_cost(layout, static_profile, scheme_name).total
    calib_pred = estimate_cost(layout, calibration.profile,
                               scheme_name).total

    registry = registry if registry is not None else MetricsRegistry()
    static_rep = record_costmodel_drift(
        registry, spec.name, static_profile.name, static_pred, actual)
    calib_rep = record_costmodel_drift(
        registry, spec.name, calibration.profile.name, calib_pred, actual)

    report = {
        "model": spec.name,
        "scheme": scheme_name,
        "k": layout.k,
        "actual_seconds": round(actual, 6),
        "static_profile": static_profile.name,
        "static_predicted_seconds": round(static_pred, 6),
        "static_drift": round(static_rep["drift"], 4),
        "calibrated_predicted_seconds": round(calib_pred, 6),
        "calibrated_drift": round(calib_rep["drift"], 4),
        "improved": calib_rep["drift"] < static_rep["drift"],
    }
    calibration.drift = report
    return report
