"""The ZKML optimizer: hardware profiles, cost model, Algorithm 1."""

from repro.optimizer.cost_model import (
    CostBreakdown,
    estimate_cost,
    estimate_proof_size,
    estimate_verification_time,
    extended_k,
    num_ffts,
    num_msms,
)
from repro.optimizer.calibrate import (
    CalibrationResult,
    calibrate_hardware,
    probe_drift,
)
from repro.optimizer.hardware import (
    PROFILES,
    R6I_8XLARGE,
    R6I_16XLARGE,
    R6I_32XLARGE,
    HardwareProfile,
    benchmark_operations,
    load_profile,
    profile_for_model,
    resolve_profile,
    save_profile,
)
from repro.optimizer.search import (
    Candidate,
    OptimizationResult,
    fixed_configuration_cost,
    optimize_layout,
)

__all__ = [
    "CostBreakdown",
    "estimate_cost",
    "estimate_proof_size",
    "estimate_verification_time",
    "num_ffts",
    "num_msms",
    "extended_k",
    "HardwareProfile",
    "benchmark_operations",
    "profile_for_model",
    "resolve_profile",
    "load_profile",
    "save_profile",
    "CalibrationResult",
    "calibrate_hardware",
    "probe_drift",
    "PROFILES",
    "R6I_8XLARGE",
    "R6I_16XLARGE",
    "R6I_32XLARGE",
    "optimize_layout",
    "fixed_configuration_cost",
    "OptimizationResult",
    "Candidate",
]
