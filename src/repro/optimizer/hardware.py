"""Hardware profiles and operation benchmarking (paper §7.4).

The cost model needs, per proving machine: the time of a single FFT of
size 2^k, a single MSM of size 2^k, lookup-table construction of size
2^k, and a single field multiply-add.  ``benchmark_operations`` measures
them *on this machine against this Python prover* (used for the §9.5
rank-correlation experiment, where estimates are compared with real
proving runs); the ``R6I_*`` profiles model the paper's AWS boxes, with
constants calibrated so the headline magnitudes land near Table 6.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS, PrimeField
from repro.field.ntt import ntt

#: Schema tag for profile JSON files written by ``save_profile`` /
#: ``zkml calibrate``.
PROFILE_SCHEMA = "zkml-hardware-profile/v1"

#: Environment variable naming the default hardware profile: either a
#: built-in profile name or a path to a calibrated profile JSON.
ENV_PROFILE = "ZKML_HW_PROFILE"


@dataclass(frozen=True)
class HardwareProfile:
    """Per-machine operation costs, all in seconds."""

    name: str
    cores: int
    ram_gb: int
    #: k -> seconds for one size-2^k FFT.
    t_fft: Dict[int, float]
    #: k -> seconds for one size-2^k MSM.
    t_msm: Dict[int, float]
    #: k -> seconds to build one size-2^k lookup helper set.
    t_lookup: Dict[int, float]
    #: seconds for one field multiply-add.
    t_field: float

    def fft(self, k: int) -> float:
        return self._interp(self.t_fft, k)

    def msm(self, k: int) -> float:
        return self._interp(self.t_msm, k)

    def lookup(self, k: int) -> float:
        return self._interp(self.t_lookup, k)

    @staticmethod
    def _interp(table: Dict[int, float], k: int) -> float:
        if k in table:
            return table[k]
        below = [kk for kk in table if kk < k]
        above = [kk for kk in table if kk > k]
        if below and above:
            lo, hi = max(below), min(above)
            frac = (k - lo) / (hi - lo)
            return table[lo] * (table[hi] / table[lo]) ** frac
        if below:  # extrapolate doubling-per-k
            lo = max(below)
            return table[lo] * (2.1 ** (k - lo))
        hi = min(above)
        return table[hi] / (2.1 ** (hi - k))

    def memory_bytes(self, k: int, total_columns: int, extension: int) -> int:
        """Rough prover footprint: base + extended evaluations per column."""
        return 32 * (1 << k) * total_columns * (1 + extension)

    def fits_memory(self, k: int, total_columns: int, extension: int) -> bool:
        return self.memory_bytes(k, total_columns, extension) <= (
            self.ram_gb * (1 << 30)
        )


def _aws_profile(name: str, cores: int, ram_gb: int) -> HardwareProfile:
    """A modeled AWS instance.

    Constants are calibrated against the paper's Table 6 magnitudes on a
    32-core baseline (MNIST ~2.5 s, GPT-2 ~1 h) and scaled by core count
    with imperfect parallel efficiency.
    """
    scale = (32.0 / cores) ** 0.8
    c_fft = 2.2e-9 * scale
    c_msm = 2.6e-7 * scale
    c_lookup = 1.2e-7 * scale
    return HardwareProfile(
        name=name,
        cores=cores,
        ram_gb=ram_gb,
        t_fft={k: c_fft * k * (1 << k) for k in range(10, 31)},
        t_msm={k: c_msm * (1 << k) for k in range(10, 29)},
        t_lookup={k: c_lookup * (1 << k) for k in range(10, 29)},
        t_field=2.0e-9 * scale,
    )


#: The paper's proving machines (§9.1).
R6I_8XLARGE = _aws_profile("r6i.8xlarge", cores=32, ram_gb=256)
R6I_16XLARGE = _aws_profile("r6i.16xlarge", cores=64, ram_gb=512)
R6I_32XLARGE = _aws_profile("r6i.32xlarge", cores=128, ram_gb=1024)

PROFILES = {
    p.name: p for p in (R6I_8XLARGE, R6I_16XLARGE, R6I_32XLARGE)
}


def profile_for_model(model_name: str) -> HardwareProfile:
    """The instance the paper used per model (§9.1)."""
    if model_name in ("gpt2", "diffusion"):
        return R6I_32XLARGE
    if model_name == "mobilenet":
        return R6I_16XLARGE
    return R6I_8XLARGE


def save_profile(profile: HardwareProfile, path: str,
                 meta: Optional[Dict] = None) -> None:
    """Persist a profile as ``zkml-hardware-profile/v1`` JSON.

    ``meta`` carries calibration provenance (fit constants, residuals,
    benchmark sizes) — it is stored verbatim and ignored on load.
    """
    doc = {
        "schema": PROFILE_SCHEMA,
        "name": profile.name,
        "cores": profile.cores,
        "ram_gb": profile.ram_gb,
        "t_fft": {str(k): v for k, v in sorted(profile.t_fft.items())},
        "t_msm": {str(k): v for k, v in sorted(profile.t_msm.items())},
        "t_lookup": {str(k): v for k, v in sorted(profile.t_lookup.items())},
        "t_field": profile.t_field,
    }
    if meta:
        doc["meta"] = meta
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_profile(path: str) -> HardwareProfile:
    """Load a profile written by :func:`save_profile`."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            "%s is not a %s document (schema=%r)"
            % (path, PROFILE_SCHEMA, doc.get("schema")))
    return HardwareProfile(
        name=doc["name"],
        cores=int(doc["cores"]),
        ram_gb=int(doc["ram_gb"]),
        t_fft={int(k): float(v) for k, v in doc["t_fft"].items()},
        t_msm={int(k): float(v) for k, v in doc["t_msm"].items()},
        t_lookup={int(k): float(v) for k, v in doc["t_lookup"].items()},
        t_field=float(doc["t_field"]),
    )


def resolve_profile(
    name_or_path: Optional[str] = None,
    model_name: Optional[str] = None,
) -> HardwareProfile:
    """Resolve the hardware profile to price circuits against.

    Precedence: an explicit ``name_or_path`` (built-in profile name or
    path to a calibrated JSON), then the :data:`ENV_PROFILE` environment
    variable (same two forms), then the paper's per-model instance (or
    ``r6i.8xlarge`` when no model is named).  This is how ``zkml
    calibrate`` output replaces the static defaults everywhere without
    threading a flag through each call site.
    """
    if name_or_path is None:
        name_or_path = os.environ.get(ENV_PROFILE) or None
    if name_or_path is not None:
        if name_or_path in PROFILES:
            return PROFILES[name_or_path]
        if os.path.exists(name_or_path):
            return load_profile(name_or_path)
        raise ValueError(
            "unknown hardware profile %r (not a built-in: %s; not a file)"
            % (name_or_path, ", ".join(sorted(PROFILES))))
    if model_name is not None:
        return profile_for_model(model_name)
    return R6I_8XLARGE


_local_cache: Dict = {}


def benchmark_operations(
    field: PrimeField = GOLDILOCKS,
    ks=(8, 9, 10, 11, 12),
    scheme_name: str = "kzg",
) -> HardwareProfile:
    """Measure this machine's Python prover primitives (run once).

    The paper's ``BenchmarkOperations(hardware)`` step: time one FFT, one
    commitment ("MSM"), and one lookup-helper pass at several sizes, and
    one field multiply-add; larger sizes extrapolate.
    """
    key = (field.name, tuple(ks), scheme_name)
    cached = _local_cache.get(key)
    if cached is not None:
        return cached
    scheme = scheme_by_name(scheme_name, field)
    t_fft, t_msm, t_lookup = {}, {}, {}
    for k in ks:
        n = 1 << k
        values = list(range(1, n + 1))
        root = field.root_of_unity(k)
        start = time.perf_counter()
        ntt(field, values, root)
        t_fft[k] = time.perf_counter() - start

        start = time.perf_counter()
        scheme.commit(values)
        t_msm[k] = time.perf_counter() - start

        start = time.perf_counter()
        field.batch_inv(values)
        t_lookup[k] = time.perf_counter() - start

    start = time.perf_counter()
    acc = 1
    reps = 20000
    for i in range(reps):
        acc = field.add(field.mul(acc, 1234567), 89)
    t_field = (time.perf_counter() - start) / reps

    profile = HardwareProfile(
        name="local-python",
        cores=1,
        ram_gb=16,
        t_fft=t_fft,
        t_msm=t_msm,
        t_lookup=t_lookup,
        t_field=t_field,
    )
    _local_cache[key] = profile
    return profile
