"""The circuit-layout optimizer (paper §7, Algorithm 1).

For every candidate logical layout and every column count in
``[n_min, n_max]``, build the physical layout (which fixes the minimal
feasible ``k`` — FindOptimalK), estimate its cost under the hardware
profile, and keep the cheapest.  The objective can be proving time
(default) or proof size (§9.4's size-optimized case, which pins the
column count to the gadget minimum of 10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.compiler.logical import LayoutPlan, generate_logical_layouts
from repro.compiler.physical import (
    LayoutInfeasible,
    PhysicalLayout,
    build_physical_layout,
)
from repro.model.spec import ModelSpec
from repro.optimizer.cost_model import (
    CostBreakdown,
    estimate_cost,
    estimate_proof_size,
    estimate_verification_time,
    extended_k,
)
from repro.obs.trace import get_tracer
from repro.optimizer.hardware import HardwareProfile


@dataclass
class Candidate:
    """One evaluated physical layout."""

    layout: PhysicalLayout
    cost: CostBreakdown
    proof_size: int
    objective_value: float


@dataclass
class OptimizationResult:
    """Output of Algorithm 1 plus bookkeeping for the ablations."""

    spec: ModelSpec
    scheme_name: str
    hardware: HardwareProfile
    objective: str
    best: Candidate
    candidates: List[Candidate]
    runtime_seconds: float

    @property
    def layout(self) -> PhysicalLayout:
        return self.best.layout

    @property
    def proving_time(self) -> float:
        return self.best.cost.total

    @property
    def verification_time(self) -> float:
        return estimate_verification_time(self.best.layout, self.hardware,
                                          self.scheme_name)

    @property
    def proof_size(self) -> int:
        return self.best.proof_size

    def describe(self) -> str:
        layout = self.best.layout
        return (
            "%s [%s/%s]: %d cols x 2^%d rows, est. prove %.2fs, verify "
            "%.4fs, proof %d bytes (%d layouts evaluated in %.2fs)"
            % (self.spec.name, self.scheme_name, self.objective,
               layout.num_cols, layout.k, self.proving_time,
               self.verification_time, self.proof_size,
               len(self.candidates), self.runtime_seconds)
        )


def optimize_layout(
    spec: ModelSpec,
    hardware: HardwareProfile,
    scheme_name: str = "kzg",
    scale_bits: int = 12,
    objective: str = "time",
    n_min: int = 6,
    n_max: int = 48,
    prune: bool = True,
    restrict_gadgets: bool = False,
    include_freivalds: bool = True,
    lookup_bits: Optional[int] = None,
    max_k: int = 28,
) -> OptimizationResult:
    """Algorithm 1: choose the best physical layout for a model."""
    if objective not in ("time", "size"):
        raise ValueError("objective must be 'time' or 'size'")
    start = time.perf_counter()
    tracer = get_tracer()
    with tracer.span("optimize", model=spec.name, scheme=scheme_name,
                     objective=objective) as opt_span:
        plans = generate_logical_layouts(spec, prune=prune,
                                         restrict_gadgets=restrict_gadgets,
                                         include_freivalds=include_freivalds)
        candidates: List[Candidate] = []
        best: Optional[Candidate] = None
        # minimizing proof size in practice means minimizing columns (§9.4:
        # "which is 10 for our gadgets"); our gadget set admits even narrower
        # grids, so both objectives search the same range and the size
        # objective converges to the feasible minimum on its own.
        col_range = list(range(n_min, n_max + 1))
        for plan_index, plan in enumerate(plans):
            with tracer.span("plan[%d]" % plan_index) as plan_span:
                plan_candidates = 0
                for num_cols in col_range:
                    try:
                        layout = build_physical_layout(
                            spec, plan, num_cols, scale_bits,
                            lookup_bits=lookup_bits, max_k=max_k,
                        )
                    except LayoutInfeasible:
                        continue
                    total_columns = (
                        layout.num_advice + layout.num_fixed
                        + layout.num_selectors + 3 * layout.num_lookups
                    )
                    extension = 1 << (extended_k(layout) - layout.k)
                    if not hardware.fits_memory(layout.k, total_columns,
                                                extension):
                        continue
                    cost = estimate_cost(layout, hardware, scheme_name)
                    size = estimate_proof_size(layout, scheme_name)
                    value = cost.total if objective == "time" else float(size)
                    candidate = Candidate(layout=layout, cost=cost,
                                          proof_size=size,
                                          objective_value=value)
                    candidates.append(candidate)
                    plan_candidates += 1
                    if best is None or value < best.objective_value:
                        best = candidate
                plan_span.set_attr("feasible", plan_candidates)
        opt_span.set_attr("layouts_evaluated", len(candidates))
        if best is not None:
            opt_span.set_attr("best_k", best.layout.k)
            opt_span.set_attr("best_num_cols", best.layout.num_cols)
    if best is None:
        raise LayoutInfeasible(
            "no feasible layout for %s on %s" % (spec.name, hardware.name)
        )
    return OptimizationResult(
        spec=spec,
        scheme_name=scheme_name,
        hardware=hardware,
        objective=objective,
        best=best,
        candidates=candidates,
        runtime_seconds=time.perf_counter() - start,
    )


def fixed_configuration_cost(
    spec: ModelSpec,
    hardware: HardwareProfile,
    num_cols: int,
    scheme_name: str = "kzg",
    scale_bits: int = 12,
    lookup_bits: Optional[int] = None,
) -> Candidate:
    """Cost of a fixed (non-optimized) configuration — Table 10's baseline.

    Uses the default logical layout at a pinned column count; the row
    count is whatever that width forces (minimum rows at 40 columns in
    the paper's ablation).
    """
    layout = build_physical_layout(
        spec, LayoutPlan(generate_logical_layouts(spec)[0].base), num_cols,
        scale_bits, lookup_bits=lookup_bits,
    )
    cost = estimate_cost(layout, hardware, scheme_name)
    return Candidate(layout=layout, cost=cost,
                     proof_size=estimate_proof_size(layout, scheme_name),
                     objective_value=cost.total)
