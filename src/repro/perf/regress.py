"""Benchmark regression gating (``zkml bench --compare`` and
``benchmarks/regress.py``).

Diffs a fresh benchmark report against a committed baseline and fails —
exit non-zero — when any metric regresses beyond its threshold.  Two
metric classes with different rules:

- **deterministic** metrics (``k``, ``num_cols``, ``modeled_proof_bytes``,
  every ``observed_ops.*`` counter): the prover does exactly this much
  work for these inputs, so any *increase* is a regression (threshold
  0.0 by default).  Decreases are reported as improvements, not
  failures — shrinking the circuit is the whole point of the project.
- **timing** metrics (anything ending in ``_seconds``): noisy by nature,
  gated by a relative threshold (default +50%; CI uses a looser one so
  a slow runner can't fail the build on wall-clock alone).

Some serve-schema metrics are **higher-is-better** (``throughput_rps``,
``speedup_vs_independent``, ``mean_occupancy``, ``keygen_cache_hits``):
for those the gate flips — a *decrease* beyond the threshold regresses
(``allowed = base / (1 + limit)``), an increase is an improvement.  They
derive from wall-clock, so they share the relative "time" default
threshold.

A metric present in the baseline but missing from the current report is
a regression (coverage loss); a new metric in the current report is
informational.  Thresholds are per-metric overrides, with the special
key ``time`` applying to every ``*_seconds`` metric at once::

    thresholds = {"time": 4.0, "dlrm.prove_seconds": 0.5,
                  "dlrm.observed_ops.commitments": 0.0}

Works on both report schemas (``zkml-bench-prover/v1`` keyed by model,
``zkml-bench-serve/v1`` flattened) — any JSON document degrades to a
flat diff of its numeric leaves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

__all__ = ["MetricDiff", "RegressionReport", "compare_reports",
           "load_report", "parse_thresholds", "DEFAULT_TIME_THRESHOLD"]

#: Default relative slack for ``*_seconds`` metrics (+50%).
DEFAULT_TIME_THRESHOLD = 0.5

#: Keys never diffed — environment/config noise, not performance.
SKIP_KEYS = frozenset({
    "schema", "python", "seed", "jobs", "scheme",
    "seed_baseline_seconds", "speedup_vs_seed",
})


def load_report(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def parse_thresholds(pairs) -> Dict[str, float]:
    """Parse CLI ``key=value`` threshold overrides."""
    out: Dict[str, float] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise ValueError(
                "threshold must be key=value, got %r" % (pair,))
        key, _, value = pair.partition("=")
        out[key.strip()] = float(value)
    return out


#: Metrics where *more* is better: the regression gate flips direction.
HIGHER_IS_BETTER_SUFFIXES = (
    "throughput_rps", "speedup_vs_independent", "mean_occupancy",
    "keygen_cache_hits",
)


def _is_timing(metric: str) -> bool:
    # RSS peaks are environment-noisy like wall-clock, so they share the
    # relative "time" threshold rather than the exact-match default.
    return (metric.endswith("_seconds") or ".phase_seconds." in metric
            or metric.endswith("_rss_kb") or ".phase_rss_kb." in metric)


def _is_higher_better(metric: str) -> bool:
    return metric.endswith(HIGHER_IS_BETTER_SUFFIXES)


def flatten_metrics(report: Dict) -> Dict[str, float]:
    """All numeric leaves of a report, dotted-path keyed.

    The prover schema's ``models`` list is re-keyed by model name so the
    diff is stable under reordering; everything else flattens
    positionally.
    """

    out: Dict[str, float] = {}

    def walk(prefix: str, node) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            out[prefix] = float(node)
            return
        if isinstance(node, dict):
            for key in sorted(node):
                if key in SKIP_KEYS:
                    continue
                walk("%s.%s" % (prefix, key) if prefix else key, node[key])
            return
        if isinstance(node, list):
            if all(isinstance(e, dict) and "model" in e for e in node) \
                    and node:
                for entry in node:
                    walk("%s.%s" % (prefix, entry["model"]) if prefix
                         else str(entry["model"]), entry)
            else:
                for i, entry in enumerate(node):
                    walk("%s.%d" % (prefix, i), entry)

    walk("", report)
    # the models.* prefix is pure noise in every metric name
    return {
        (key[len("models."):] if key.startswith("models.") else key): value
        for key, value in out.items()
    }


@dataclass
class MetricDiff:
    """One metric's baseline-vs-current verdict."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    threshold: float
    #: "ok" | "improved" | "regressed" | "missing" | "new"
    status: str

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline and self.current is not None:
            return self.current / self.baseline
        return None

    def render(self) -> str:
        if self.status == "missing":
            return "MISSING   %-46s baseline %s, absent now" % (
                self.metric, _fmt(self.baseline))
        if self.status == "new":
            return "new       %-46s %s" % (self.metric, _fmt(self.current))
        ratio = self.ratio
        arrow = ("%+.1f%%" % (100.0 * (ratio - 1.0))) if ratio else "n/a"
        limit_sign = "-" if _is_higher_better(self.metric) else "+"
        return "%-9s %-46s %s -> %s (%s, limit %s%.0f%%)" % (
            self.status.upper() if self.status == "regressed"
            else self.status,
            self.metric, _fmt(self.baseline), _fmt(self.current), arrow,
            limit_sign, 100.0 * self.threshold)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return "%.4f" % value


@dataclass
class RegressionReport:
    """The full diff; ``ok`` is the CI gate."""

    baseline_path: str
    diffs: List[MetricDiff] = dataclass_field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDiff]:
        return [d for d in self.diffs
                if d.status in ("regressed", "missing")]

    @property
    def improvements(self) -> List[MetricDiff]:
        return [d for d in self.diffs if d.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> Dict:
        return {
            "schema": "zkml-regress/v1",
            "baseline": self.baseline_path,
            "ok": self.ok,
            "checked": len(self.diffs),
            "regressions": [d.metric for d in self.regressions],
            "improvements": [d.metric for d in self.improvements],
            "diffs": [
                {"metric": d.metric, "baseline": d.baseline,
                 "current": d.current, "threshold": d.threshold,
                 "status": d.status}
                for d in self.diffs
            ],
        }

    def render(self, verbose: bool = False) -> str:
        lines = []
        for diff in self.diffs:
            if verbose or diff.status in ("regressed", "missing",
                                          "improved", "new"):
                lines.append(diff.render())
        verdict = ("OK: %d metrics within thresholds"
                   % len(self.diffs)) if self.ok else (
            "REGRESSED: %d of %d metrics (baseline %s)"
            % (len(self.regressions), len(self.diffs), self.baseline_path))
        lines.append(verdict)
        return "\n".join(lines)


def _threshold_for(metric: str, thresholds: Dict[str, float]) -> float:
    if metric in thresholds:
        return thresholds[metric]
    # longest matching suffix-style override, e.g. "prove_seconds" or
    # "observed_ops.commitments" applying across models
    candidates = [key for key in thresholds
                  if key not in ("time",) and
                  (metric.endswith("." + key) or metric == key)]
    if candidates:
        return thresholds[max(candidates, key=len)]
    if _is_timing(metric) or _is_higher_better(metric):
        # higher-is-better metrics derive from wall-clock, so they share
        # the relative timing slack rather than the exact-match default
        return thresholds.get("time", DEFAULT_TIME_THRESHOLD)
    return 0.0


def compare_reports(
    baseline: Dict,
    current: Dict,
    thresholds: Optional[Dict[str, float]] = None,
    baseline_path: str = "<baseline>",
) -> RegressionReport:
    """Diff two benchmark reports metric by metric."""
    thresholds = thresholds or {}
    base_metrics = flatten_metrics(baseline)
    cur_metrics = flatten_metrics(current)
    report = RegressionReport(baseline_path=baseline_path)
    for metric in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(metric)
        cur = cur_metrics.get(metric)
        limit = _threshold_for(metric, thresholds)
        if base is None:
            report.diffs.append(MetricDiff(metric, None, cur, limit, "new"))
            continue
        if cur is None:
            report.diffs.append(
                MetricDiff(metric, base, None, limit, "missing"))
            continue
        if _is_higher_better(metric):
            allowed = base / (1.0 + limit) if base >= 0 else base
            if cur < allowed and base - cur > 1e-12:
                status = "regressed"
            elif cur > base + 1e-12:
                status = "improved"
            else:
                status = "ok"
        else:
            allowed = base * (1.0 + limit) if base >= 0 else base
            if cur > allowed and cur - base > 1e-12:
                status = "regressed"
            elif cur < base - 1e-12:
                status = "improved"
            else:
                status = "ok"
        report.diffs.append(MetricDiff(metric, base, cur, limit, status))
    return report


def compare_files(
    baseline_path: str,
    current_path: str,
    thresholds: Optional[Dict[str, float]] = None,
) -> RegressionReport:
    return compare_reports(
        load_report(baseline_path), load_report(current_path),
        thresholds=thresholds, baseline_path=baseline_path)
