"""Proving-performance toolkit: phase timers, parallel dispatch, caches.

The ROADMAP's north star is a prover that "runs as fast as the hardware
allows"; this package holds the substrate-level machinery for that:

- :class:`PhaseTimer` — per-phase wall-clock accounting the prover
  instruments (commit / helpers / quotient / openings), surfaced through
  ``ProveResult.phase_seconds`` and ``zkml prove --profile``;
- :func:`parallel_map` — opt-in multiprocess dispatch (``ZKML_JOBS`` or
  ``jobs=``) with a serial fallback and deterministic ordering, so
  parallel proofs are byte-identical to serial ones;
- :class:`ProvingKeyCache` — a keygen cache keyed by circuit digest, so
  repeated proves of the same circuit skip preprocessing;
- :mod:`repro.perf.bench` — the benchmark harness that records the
  ``BENCH_prover.json`` perf trajectory.
"""

from repro.perf.parallel import parallel_map, resolve_jobs
from repro.perf.pkcache import ProvingKeyCache, circuit_digest
from repro.perf.timer import NULL_TIMER, NullTimer, PhaseTimer

__all__ = [
    "PhaseTimer",
    "NullTimer",
    "NULL_TIMER",
    "parallel_map",
    "resolve_jobs",
    "ProvingKeyCache",
    "circuit_digest",
]
