"""Opt-in multiprocess dispatch for independent prover work items.

Column interpolations, Merkle/commitment digests, and quotient-piece
commits are embarrassingly parallel; :func:`parallel_map` fans them out
over a ``ProcessPoolExecutor`` while preserving item order, so a parallel
proof is *byte-identical* to a serial one (the transcript absorbs results
in the same order either way).

Parallelism is opt-in: ``jobs=`` wins, else the ``ZKML_JOBS`` environment
variable, else serial.  The serial path runs the initializer in-process
and maps directly — no pool, no pickling — which is also the fallback
whenever a pool cannot be spawned or dies mid-map.  That degradation is
never silent: it is logged and counted
(``resilience_degraded_total{reason="parallel_pool_unavailable"}``), and
the ``worker`` fault-injection site exercises it deterministically.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

from repro.resilience import events, faults

#: Environment variable holding the default worker count.
JOBS_ENV = "ZKML_JOBS"

#: Malformed ``ZKML_JOBS`` values already warned about (once per value, not
#: once per ``resolve_jobs`` call — the prover calls this several times).
_warned_jobs_env: set = set()


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: ``jobs`` arg, else ``ZKML_JOBS``, else 1.

    A malformed ``ZKML_JOBS`` (``ZKML_JOBS=four``) falls back to serial —
    but never silently: it is logged and counted as a degradation
    (``resilience_degraded_total{reason="invalid_jobs_env"}``), so a user
    who thinks they are running parallel finds out they are not.
    """
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            if env not in _warned_jobs_env:
                _warned_jobs_env.add(env)
                events.degraded("invalid_jobs_env", var=JOBS_ENV, value=env,
                                fallback="serial")
    return 1


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
) -> List:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results always come back in input order.  ``fn`` and each item must be
    picklable when ``jobs > 1``; ``initializer(*initargs)`` runs once per
    worker (and once in-process on the serial path) to install shared
    state such as the evaluation domain.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    try:
        faults.maybe_inject("worker")
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(items)),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                chunksize = max(1, len(items) // (jobs * 4))
                return list(pool.map(fn, items, chunksize=chunksize))
        except BrokenProcessPool as exc:
            # a worker died mid-map (OOM kill, crash): results are ordered
            # and the serial rerun recomputes everything, so the proof
            # bytes are unchanged — only slower
            raise _PoolUnavailable("worker pool died: %s" % exc) from exc
    except (OSError, ImportError, faults.InjectedFault, _PoolUnavailable) as exc:
        # sandboxes without fork/spawn, dead pools, injected worker
        # crashes: degrade to the serial path — loudly, not silently
        events.degraded("parallel_pool_unavailable", jobs=jobs,
                        items=len(items), error=type(exc).__name__)
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]


class _PoolUnavailable(RuntimeError):
    """Internal marker: the worker pool broke and serial must take over."""
