"""Opt-in multiprocess dispatch for independent prover work items.

Column interpolations, Merkle/commitment digests, and quotient-piece
commits are embarrassingly parallel; :func:`parallel_map` fans them out
over a ``ProcessPoolExecutor`` while preserving item order, so a parallel
proof is *byte-identical* to a serial one (the transcript absorbs results
in the same order either way).

Parallelism is opt-in: ``jobs=`` wins, else the ``ZKML_JOBS`` environment
variable, else serial.  The serial path runs the initializer in-process
and maps directly — no pool, no pickling — which is also the fallback
whenever a pool cannot be spawned or dies mid-map.  That degradation is
never silent: it is logged and counted
(``resilience_degraded_total{reason="parallel_pool_unavailable"}``), and
the ``worker`` fault-injection site exercises it deterministically.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.resilience import events, faults

#: Environment variable holding the default worker count.
JOBS_ENV = "ZKML_JOBS"

#: Malformed ``ZKML_JOBS`` values already warned about (once per value, not
#: once per ``resolve_jobs`` call — the prover calls this several times).
_warned_jobs_env: set = set()


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: ``jobs`` arg, else ``ZKML_JOBS``, else 1.

    A malformed ``ZKML_JOBS`` (``ZKML_JOBS=four``) falls back to serial —
    but never silently: it is logged and counted as a degradation
    (``resilience_degraded_total{reason="invalid_jobs_env"}``), so a user
    who thinks they are running parallel finds out they are not.
    """
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            if env not in _warned_jobs_env:
                _warned_jobs_env.add(env)
                events.degraded("invalid_jobs_env", var=JOBS_ENV, value=env,
                                fallback="serial")
    return 1


class _TracedTask:
    """Wrap a work item so the worker process records spans for it.

    The worker installs a fresh in-process :class:`~repro.obs.trace.Tracer`
    around the call and ships the finished spans (as plain dicts) back
    alongside the result; the parent re-registers them with
    ``Tracer.ingest`` keeping the worker's own pid/tid.  Only used when
    the caller's tracer is enabled, so the hot path never pays for it.
    """

    __slots__ = ("fn", "label")

    def __init__(self, fn: Callable, label: str):
        self.fn = fn
        self.label = label

    def __call__(self, item) -> Tuple[Any, List[dict]]:
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span(self.label):
                result = self.fn(item)
        return result, [span.as_dict() for span in tracer.spans()]


def _unwrap_traced(tracer, wrapped: List[Tuple[Any, List[dict]]]) -> List:
    """Adopt worker spans under the caller's open span; return results."""
    parent_id = tracer.current_span_id()
    results = []
    for result, span_dicts in wrapped:
        tracer.ingest(span_dicts, parent_id=parent_id)
        results.append(result)
    return results


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
) -> List:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results always come back in input order.  ``fn`` and each item must be
    picklable when ``jobs > 1``; ``initializer(*initargs)`` runs once per
    worker (and once in-process on the serial path) to install shared
    state such as the evaluation domain.

    When the process tracer is enabled, each worker task runs under its
    own tracer and its spans are re-ingested here with the worker's
    pid/tid, so a ``--jobs N`` trace shows N real lanes.
    """
    from repro.obs.trace import get_tracer

    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    tracer = get_tracer()
    traced = bool(getattr(tracer, "enabled", False))
    pool_fn = _TracedTask(fn, getattr(fn, "__name__", "task")) if traced \
        else fn
    try:
        faults.maybe_inject("worker")
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(items)),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                chunksize = max(1, len(items) // (jobs * 4))
                out = list(pool.map(pool_fn, items, chunksize=chunksize))
                return _unwrap_traced(tracer, out) if traced else out
        except BrokenProcessPool as exc:
            # a worker died mid-map (OOM kill, crash): results are ordered
            # and the serial rerun recomputes everything, so the proof
            # bytes are unchanged — only slower
            raise _PoolUnavailable("worker pool died: %s" % exc) from exc
    except (OSError, ImportError, faults.InjectedFault, _PoolUnavailable) as exc:
        # sandboxes without fork/spawn, dead pools, injected worker
        # crashes: degrade to the serial path — loudly, not silently
        events.degraded("parallel_pool_unavailable", jobs=jobs,
                        items=len(items), error=type(exc).__name__)
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]


class _PoolUnavailable(RuntimeError):
    """Internal marker: the worker pool broke and serial must take over."""


# -- zero-copy row-parallel dispatch -----------------------------------------
#
# ``parallel_row_map`` is the shared-memory sibling of ``parallel_map`` for
# the prover's column phases: instead of pickling every column vector
# through the pool's pipe, the stacked (m, n) uint64 matrix is placed in
# one ``multiprocessing.shared_memory`` block, workers attach views of
# their contiguous row range, and a second block carries the transformed
# rows back.  Only chunk bounds and per-row digests cross the pipe.
# Chunk boundaries never affect values (rows are independent) and chunk
# results are concatenated in row order, so parallel output is
# byte-identical to serial output.

_ROW_IN = None
_ROW_OUT = None
_ROW_SHM: tuple = ()


def _row_pool_init(in_name, out_name, shape, user_init, user_initargs):
    """Worker initializer: attach both blocks, then run the user's init."""
    global _ROW_IN, _ROW_OUT, _ROW_SHM
    from repro.perf import shm as shm_mod

    in_shm, _ROW_IN = shm_mod.attach_block(in_name, shape)
    out_shm, _ROW_OUT = shm_mod.attach_block(out_name, shape)
    _ROW_SHM = (in_shm, out_shm)  # keep the mmaps alive for the pool's life
    if user_init is not None:
        user_init(*user_initargs)


class _RowChunkTask:
    """One contiguous row range of a ``parallel_row_map`` call."""

    __slots__ = ("fn", "start", "stop")

    def __init__(self, fn: Callable, start: int, stop: int):
        self.fn = fn
        self.start = start
        self.stop = stop

    def __call__(self, _=None):
        out_rows, aux = self.fn(_ROW_IN[self.start:self.stop], self.start)
        _ROW_OUT[self.start:self.stop] = out_rows
        return aux


def parallel_row_map(
    fn: Callable,
    matrix,
    jobs: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
):
    """Apply ``fn(rows, row_offset) -> (out_rows, aux)`` over row chunks.

    ``matrix`` is an ``(m, n)`` ``uint64`` array; ``fn`` receives a
    contiguous block of rows plus its starting row index and returns the
    transformed rows (same shape) and a list with one picklable entry per
    row.  Returns ``(out_matrix, aux)`` with ``aux`` in row order.

    Serial (``jobs <= 1``) runs ``fn`` once in-process with no copies.
    Parallel runs ship the matrix through shared memory (zero-copy on the
    worker side) and degrade to the serial path — loudly, via
    ``resilience_degraded_total`` — whenever shared memory or the worker
    pool is unavailable, exactly like :func:`parallel_map`.
    """
    import numpy as np

    jobs = resolve_jobs(jobs)
    m = int(matrix.shape[0])

    def _serial():
        if initializer is not None:
            initializer(*initargs)
        out_rows, aux = fn(matrix, 0)
        return np.asarray(out_rows, dtype=np.uint64), list(aux)

    if jobs <= 1 or m <= 1:
        return _serial()
    try:
        faults.maybe_inject("worker")
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        from repro.perf import shm as shm_mod

        in_shm = out_shm = None
        try:
            in_shm, in_arr = shm_mod.create_block(matrix.shape)
            out_shm, out_arr = shm_mod.create_block(matrix.shape)
            in_arr[:] = matrix
            chunks = min(jobs, m)
            bounds = [
                (m * c // chunks, m * (c + 1) // chunks) for c in range(chunks)
            ]
            tasks = [_RowChunkTask(fn, start, stop) for start, stop in bounds]
            try:
                with ProcessPoolExecutor(
                    max_workers=chunks,
                    initializer=_row_pool_init,
                    initargs=(in_shm.name, out_shm.name, matrix.shape,
                              initializer, initargs),
                ) as pool:
                    aux_chunks = [
                        future.result()
                        for future in [pool.submit(task) for task in tasks]
                    ]
            except BrokenProcessPool as exc:
                raise _PoolUnavailable("worker pool died: %s" % exc) from exc
            out = np.array(out_arr)  # copy out before the block is unlinked
            aux: List = []
            for chunk in aux_chunks:
                aux.extend(chunk)
            return out, aux
        finally:
            if in_shm is not None:
                shm_mod.destroy_block(in_shm)
            if out_shm is not None:
                shm_mod.destroy_block(out_shm)
    except (OSError, ImportError, faults.InjectedFault, _PoolUnavailable) as exc:
        events.degraded("parallel_pool_unavailable", jobs=jobs, items=m,
                        error=type(exc).__name__)
        return _serial()
