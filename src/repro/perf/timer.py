"""Per-phase wall-clock accounting for the prover.

A :class:`PhaseTimer` is handed into ``create_proof`` and accumulates
seconds per named phase; the same phase name may be entered repeatedly
(times add up).  Since the observability PR the timer is a *span-backed
shim*: each phase also opens a span on the active
:mod:`repro.obs.trace` tracer, so ``zkml prove --trace`` sees the
commit/helpers/quotient/openings breakdown as children of the prove span
while ``ProveResult.phase_seconds`` keeps its original shape.
:class:`NullTimer` is the zero-overhead default so the prover never
branches on "is profiling on".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict

from repro.obs.trace import get_tracer

try:  # POSIX only; on other platforms rss_kb just stays empty
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase (and emits spans).

    Each phase exit also samples ``ru_maxrss`` into :attr:`rss_kb` — the
    process-wide peak resident set observed by the end of that phase
    (kilobytes on Linux).  The counter is monotone across phases, so the
    phase whose value first jumps is the one that grew the footprint;
    ``zkml bench --mem`` reports it per model.
    """

    def __init__(self, tracer=None) -> None:
        self.seconds: Dict[str, float] = {}
        self.rss_kb: Dict[str, int] = {}
        #: Tracer receiving one span per phase entry; ``None`` means
        #: "whatever tracer is active when the phase runs".
        self._tracer = tracer

    @contextmanager
    def phase(self, name: str):
        tracer = self._tracer if self._tracer is not None else get_tracer()
        start = time.perf_counter()
        with tracer.span(name):
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
                if _resource is not None:
                    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
                    self.rss_kb[name] = max(self.rss_kb.get(name, 0), int(peak))

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> str:
        """A one-phase-per-line report, longest phase first."""
        if not self.seconds:
            return "(no phases recorded)"
        total = self.total
        lines = []
        for name, secs in sorted(self.seconds.items(), key=lambda kv: -kv[1]):
            share = 100.0 * secs / total if total else 0.0
            lines.append("%-12s %8.3f s  %5.1f%%" % (name, secs, share))
        lines.append("%-12s %8.3f s" % ("total", total))
        return "\n".join(lines)


class NullTimer:
    """A do-nothing :class:`PhaseTimer` stand-in (the prover's default)."""

    seconds: Dict[str, float] = {}
    rss_kb: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        yield

    @property
    def total(self) -> float:
        return 0.0

    def breakdown(self) -> str:
        return "(profiling disabled)"


#: Shared no-op timer instance.
NULL_TIMER = NullTimer()
