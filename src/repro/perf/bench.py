"""Prover benchmark harness.

Proves a handful of mini zoo models end to end, records keygen / prove /
verify wall-clock plus the per-phase breakdown from the prover's
:class:`~repro.perf.timer.PhaseTimer`, and writes the result to
``BENCH_prover.json`` so the perf trajectory is tracked in-repo.

``SEED_BASELINE_SECONDS`` holds the serial prove times measured on the
repo seed (pre-vectorization) on this container's single core, with the
same deterministic inputs this harness generates; ``speedup_vs_seed``
reports current/baseline per model.

The harness doubles as the observability smoke test: pass ``trace_path``
/ ``metrics_path`` (CLI ``--trace`` / ``--metrics``) to capture the span
tree and the metrics registry for the whole run, and ``check_parallel``
to re-prove each model with worker processes and assert the proof bytes
are identical to the serial run (the report carries
``parallel_proofs_identical`` so callers can exit non-zero).
"""

from __future__ import annotations

import json
import pickle
import platform
import sys
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.model.zoo import get_model
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, use_tracer
from repro.resilience import events
from repro.runtime.pipeline import prove_model

#: JSON schema tag for ``BENCH_prover.json``.
SCHEMA = "zkml-bench-prover/v1"

#: Serial mini-model prove seconds measured at the repo seed (same inputs,
#: same default config: kzg, num_cols=10, scale_bits=5, rng seed 0).
SEED_BASELINE_SECONDS: Dict[str, float] = {
    "mnist": 1.69,
    "dlrm": 1.26,
    "twitter": 1.91,
}

#: Models the default bench run proves, smallest first.
DEFAULT_MODELS = ("dlrm", "mnist", "twitter")

#: The single smallest model — what ``zkml bench --quick`` proves (CI smoke).
QUICK_MODELS = ("dlrm",)


def bench_inputs(spec, seed: int = 0) -> Dict[str, np.ndarray]:
    """Deterministic standard-normal inputs for a model spec."""
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal(shape).astype(np.float32)
        for name, shape in spec.inputs.items()
    }


def bench_model(
    name: str,
    scheme_name: str = "kzg",
    jobs: Optional[int] = None,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    check_parallel: bool = False,
    mem: bool = False,
) -> Dict[str, object]:
    """Prove one mini zoo model and return its benchmark record."""
    spec = get_model(name, scale="mini")
    inputs = bench_inputs(spec, seed)
    result = prove_model(
        spec, inputs, scheme_name=scheme_name, jobs=jobs, metrics=metrics
    )
    verify_seconds = result.verification_seconds()
    baseline = SEED_BASELINE_SECONDS.get(name)
    record: Dict[str, object] = {
        "model": name,
        "k": result.k,
        "num_cols": result.num_cols,
        "scheme": result.scheme_name,
        "keygen_seconds": round(result.keygen_seconds, 4),
        "prove_seconds": round(result.proving_seconds, 4),
        "verify_seconds": round(verify_seconds, 4),
        "phase_seconds": {
            phase: round(secs, 4) for phase, secs in result.phase_seconds.items()
        },
        "modeled_proof_bytes": result.modeled_proof_bytes,
        "observed_ops": result.observed_counts,
        "predicted_ops": {
            key: round(value, 2)
            for key, value in result.predicted_counts.items()
        },
    }
    if mem and result.phase_rss_kb:
        # ru_maxrss is the process-wide peak, sampled at each phase exit:
        # monotone across phases, so the first jump marks the phase that
        # grew the footprint.
        record["phase_rss_kb"] = dict(result.phase_rss_kb)
        record["peak_rss_kb"] = max(result.phase_rss_kb.values())
    if baseline is not None:
        record["seed_baseline_seconds"] = baseline
        if result.proving_seconds > 0:
            record["speedup_vs_seed"] = round(
                baseline / result.proving_seconds, 2
            )
    if check_parallel:
        # Re-prove with worker processes; the pk cache skips keygen, so
        # this costs one extra prove.  Proofs must be byte-identical.
        other_jobs = 2 if not jobs or jobs < 2 else None
        parallel = prove_model(
            spec, inputs, scheme_name=scheme_name, jobs=other_jobs
        )
        record["parallel_proof_identical"] = (
            pickle.dumps(result.proof) == pickle.dumps(parallel.proof)
        )
    return record


def run_bench(
    models: Iterable[str] = DEFAULT_MODELS,
    scheme_name: str = "kzg",
    jobs: Optional[int] = None,
    seed: int = 0,
    output_path: Optional[str] = "BENCH_prover.json",
    stream=None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    check_parallel: bool = False,
    registry: Optional[MetricsRegistry] = None,
    mem: bool = False,
) -> Dict[str, object]:
    """Prove each model, print the breakdown, and write the JSON report.

    ``registry`` lets a caller (the CLI) supply its own metrics registry;
    otherwise one is created when ``metrics_path`` is set.
    """
    stream = stream if stream is not None else sys.stdout
    tracer = Tracer() if trace_path else None
    if registry is None and metrics_path:
        registry = MetricsRegistry()
    records: List[Dict[str, object]] = []
    events.reset()  # a clean bench run must report zero recoveries

    def run_all() -> None:
        for name in models:
            record = bench_model(
                name, scheme_name=scheme_name, jobs=jobs, seed=seed,
                metrics=registry, check_parallel=check_parallel, mem=mem,
            )
            records.append(record)
            print(
                "%-10s k=%-3s prove %6.2f s  keygen %5.2f s  verify %5.2f s%s"
                % (
                    record["model"],
                    record["k"],
                    record["prove_seconds"],
                    record["keygen_seconds"],
                    record["verify_seconds"],
                    "  (%.2fx vs seed)" % record["speedup_vs_seed"]
                    if "speedup_vs_seed" in record
                    else "",
                ),
                file=stream,
            )
            for phase, secs in sorted(
                record["phase_seconds"].items(), key=lambda kv: -kv[1]
            ):
                print("    %-10s %6.3f s" % (phase, secs), file=stream)
            if "peak_rss_kb" in record:
                print("    peak RSS   %6.1f MB" %
                      (record["peak_rss_kb"] / 1024.0), file=stream)
            if record.get("parallel_proof_identical") is False:
                print("    WARNING: parallel proof bytes diverge from serial",
                      file=stream)

    if tracer is not None:
        with use_tracer(tracer):
            run_all()
    else:
        run_all()

    report: Dict[str, object] = {
        "schema": SCHEMA,
        "config": {
            "scheme": scheme_name,
            "jobs": jobs,
            "seed": seed,
            "python": platform.python_version(),
        },
        "models": records,
        "total_prove_seconds": round(
            sum(r["prove_seconds"] for r in records), 4
        ),
        # retry/degradation/rebuild counts accumulated across the run — a
        # clean benchmark shows zeros; anything else means the pipeline
        # recovered from something (and the numbers are suspect)
        "resilience": events.counts(),
    }
    if registry is not None:
        events.merge_into(registry)
    if check_parallel:
        report["parallel_proofs_identical"] = all(
            r.get("parallel_proof_identical", True) for r in records
        )
    if output_path:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % output_path, file=stream)
    if tracer is not None and trace_path:
        tracer.write(trace_path)
        print("wrote %s" % trace_path, file=stream)
    if registry is not None and metrics_path:
        registry.write(metrics_path)
        print("wrote %s" % metrics_path, file=stream)
    return report
