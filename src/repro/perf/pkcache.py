"""Proving-key cache keyed by circuit digest.

Keygen only reads witness-independent data — the constraint system, fixed
and selector values, and the copy-constraint list.  Two proves of the same
model with different inputs therefore share keys; the cache detects that
with a structural digest and skips preprocessing entirely.

Every entry carries an integrity checksum computed at insert time and
re-verified on each hit: a corrupted entry (bit rot, a buggy mutation of
shared key state, or the ``cache_read`` fault-injection site) is
detected, **evicted, and rebuilt** by re-running keygen — counted as
``resilience_recovered_total{reason="pk_cache_rebuild"}`` rather than
poisoning the proof.  Callers that must not tolerate rebuilds can pass
``strict=True`` to get a typed
:class:`~repro.resilience.errors.CacheCorruptionError` instead.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import Optional, Tuple

from repro.commit.scheme import CommitmentScheme
from repro.halo2.circuit import Assignment, ConstraintSystem
from repro.halo2.column import Column, ColumnType
from repro.halo2.keygen import ProvingKey, VerifyingKey, keygen
from repro.resilience import events, faults
from repro.resilience.errors import CacheCorruptionError


def circuit_digest(
    cs: ConstraintSystem, assignment: Assignment, scheme_name: str
) -> str:
    """A binding digest of everything keygen consumes.

    Covers the circuit shape (columns, gates, lookups, equality set), the
    fixed/selector grids, and the copy constraints — but *not* advice or
    instance values, which keygen never reads.
    """
    h = hashlib.blake2b(digest_size=32)

    def put(tag: str, payload: str) -> None:
        data = payload.encode()
        h.update(tag.encode())
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)

    put("scheme", scheme_name)
    put(
        "shape",
        "%d:%d:%d:%d:%d:%d"
        % (
            assignment.k,
            cs.num_advice,
            cs.num_fixed,
            cs.num_instance,
            cs.num_selectors,
            cs.field.p,
        ),
    )
    for gate in cs.gates:
        put("gate", "%s|%r|%r" % (gate.name, gate.selector, gate.constraints))
    for lk in cs.lookups:
        put("lookup", "%s|%r|%r" % (lk.name, lk.inputs, lk.table))
    put("equality", repr(cs.permuted_columns()))
    for i in range(cs.num_fixed):
        put("fixed:%d" % i, repr(assignment.column_values(Column(ColumnType.FIXED, i))))
    for i, sel in enumerate(assignment.selectors):
        put("selector:%d" % i, repr(sel))
    put("copies", repr(assignment.copies))
    return h.hexdigest()


def _entry_checksum(pk: ProvingKey, vk: VerifyingKey) -> str:
    """An integrity checksum over the cached key material.

    Covers exactly what proving consumes: the vk's binding digest (fixed
    polynomial commitments and shape) plus the prover's evaluation-form
    fixed data.  Deliberately *not* a pickle of the objects — the vk and
    its evaluation domain memoize derived data lazily (vk digest, NTT
    twiddles), which would make a whole-object checksum unstable.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(vk.digest())
    for col in sorted(pk.fixed_evals, key=lambda c: (c.kind.value, c.index)):
        values = pk.fixed_evals[col]
        h.update(repr(col).encode())
        h.update(len(values).to_bytes(8, "little"))
        for v in values:
            h.update(int(v).to_bytes(32, "little"))
    return h.hexdigest()


class ProvingKeyCache:
    """A small LRU of checksummed ``(pk, vk)`` pairs keyed by
    :func:`circuit_digest`."""

    def __init__(self, maxsize: int = 4, validate: bool = True):
        self.maxsize = maxsize
        self.validate = validate
        self._entries: "OrderedDict[str, Tuple[ProvingKey, VerifyingKey, str]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0

    def _entry_is_intact(self, digest: str) -> bool:
        """Re-verify a cached entry's checksum (the ``cache_read`` fault
        site corrupts the stored checksum to simulate bit rot)."""
        pk, vk, stored = self._entries[digest]
        try:
            faults.maybe_inject("cache_read")
        except faults.InjectedFault:
            stored = "corrupted:" + stored
        return _entry_checksum(pk, vk) == stored

    def get_or_create(
        self,
        cs: ConstraintSystem,
        assignment: Assignment,
        scheme: CommitmentScheme,
        digest: Optional[str] = None,
        strict: bool = False,
    ) -> Tuple[ProvingKey, VerifyingKey, bool]:
        """Return cached keys for this circuit, running keygen on a miss.

        The third element reports whether keygen was skipped.  A cache
        hit whose checksum fails is evicted and rebuilt (counted as a
        recovery); with ``strict=True`` it raises
        :class:`CacheCorruptionError` instead.
        """
        if digest is None:
            digest = circuit_digest(cs, assignment, scheme.name)
        entry = self._entries.get(digest)
        if entry is not None:
            if not self.validate or self._entry_is_intact(digest):
                self._entries.move_to_end(digest)
                self.hits += 1
                return entry[0], entry[1], True
            # corruption detected: evict, then fall through to rebuild
            del self._entries[digest]
            self.rebuilds += 1
            if strict:
                raise CacheCorruptionError(
                    "proving-key cache entry failed its checksum",
                    digest=digest[:16],
                )
            events.recovered("pk_cache_rebuild", digest=digest[:16])
        pk, vk = keygen(cs, assignment, scheme)
        self._entries[digest] = (pk, vk, _entry_checksum(pk, vk)
                                 if self.validate else "")
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        self.misses += 1
        return pk, vk, False

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        """A plain-dict snapshot for operator surfaces (``zkml top``)."""
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "rebuilds": self.rebuilds,
        }


#: Process-wide default cache used by the runtime pipeline.
GLOBAL_PK_CACHE = ProvingKeyCache()
