"""Proving-key cache keyed by circuit digest.

Keygen only reads witness-independent data — the constraint system, fixed
and selector values, and the copy-constraint list.  Two proves of the same
model with different inputs therefore share keys; the cache detects that
with a structural digest and skips preprocessing entirely.

Two layers:

- :class:`ProvingKeyCache` — the in-memory LRU every prove consults
  (``GLOBAL_PK_CACHE``).  Every entry carries an integrity checksum
  computed at insert time and re-verified on each hit: a corrupted entry
  (bit rot, a buggy mutation of shared key state, or the ``cache_read``
  fault-injection site) is detected, **evicted, and rebuilt** — counted
  as ``resilience_recovered_total{reason="pk_cache_rebuild"}`` rather
  than poisoning the proof.  Callers that must not tolerate rebuilds
  pass ``strict=True`` to get a typed
  :class:`~repro.resilience.errors.CacheCorruptionError` instead; the
  strict path *observes* without mutating — counters and entries are
  untouched when it raises, so a strict probe never skews hit-rate math.
- :class:`DiskPKCache` — an optional content-addressed on-disk layer
  *under* the LRU (``ProvingKeyCache.attach_disk``).  Keys survive
  restarts and are shared across the serve cluster's worker processes:
  files are checksummed (evict-never-serve-corrupt, the VK registry's
  read idiom), written atomically via per-process tmp files +
  ``os.replace``, and guarded by advisory per-digest file locks so two
  workers racing the same circuit run keygen **at most once** between
  them — the loser blocks briefly and loads the winner's keys.

Counter semantics (asserted by ``tests/perf/test_pkcache_stats.py``):
every ``get_or_create`` call increments **exactly one** of ``hits``
(served from memory), ``misses`` (first sight of this digest — filled by
keygen or by the disk layer), or ``rebuilds`` (a corrupt memory entry
was evicted and re-fetched).  ``disk_hits`` counts the subset of
misses/rebuilds that skipped keygen by loading from disk.  ``clear()``
resets entries *and* counters, so post-clear stats start from zero.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from collections import OrderedDict
from typing import Optional, Tuple, Union

from repro.commit.scheme import CommitmentScheme
from repro.halo2.circuit import Assignment, ConstraintSystem
from repro.halo2.column import Column, ColumnType
from repro.halo2.keygen import ProvingKey, VerifyingKey, keygen
from repro.resilience import events, faults
from repro.resilience.errors import CacheCorruptionError

try:  # advisory locking is POSIX-only; elsewhere the disk cache still
    import fcntl  # works, it just may duplicate a keygen under a race
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


def circuit_digest(
    cs: ConstraintSystem, assignment: Assignment, scheme_name: str
) -> str:
    """A binding digest of everything keygen consumes.

    Covers the circuit shape (columns, gates, lookups, equality set), the
    fixed/selector grids, and the copy constraints — but *not* advice or
    instance values, which keygen never reads.
    """
    h = hashlib.blake2b(digest_size=32)

    def put(tag: str, payload: str) -> None:
        data = payload.encode()
        h.update(tag.encode())
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)

    put("scheme", scheme_name)
    put(
        "shape",
        "%d:%d:%d:%d:%d:%d"
        % (
            assignment.k,
            cs.num_advice,
            cs.num_fixed,
            cs.num_instance,
            cs.num_selectors,
            cs.field.p,
        ),
    )
    for gate in cs.gates:
        put("gate", "%s|%r|%r" % (gate.name, gate.selector, gate.constraints))
    for lk in cs.lookups:
        put("lookup", "%s|%r|%r" % (lk.name, lk.inputs, lk.table))
    put("equality", repr(cs.permuted_columns()))
    for i in range(cs.num_fixed):
        put("fixed:%d" % i, repr(assignment.column_values(Column(ColumnType.FIXED, i))))
    for i, sel in enumerate(assignment.selectors):
        put("selector:%d" % i, repr(sel))
    put("copies", repr(assignment.copies))
    return h.hexdigest()


def _entry_checksum(pk: ProvingKey, vk: VerifyingKey) -> str:
    """An integrity checksum over the cached key material.

    Covers exactly what proving consumes: the vk's binding digest (fixed
    polynomial commitments and shape) plus the prover's evaluation-form
    fixed data.  Deliberately *not* a pickle of the objects — the vk and
    its evaluation domain memoize derived data lazily (vk digest, NTT
    twiddles), which would make a whole-object checksum unstable.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(vk.digest())
    for col in sorted(pk.fixed_evals, key=lambda c: (c.kind.value, c.index)):
        values = pk.fixed_evals[col]
        h.update(repr(col).encode())
        h.update(len(values).to_bytes(8, "little"))
        for v in values:
            h.update(int(v).to_bytes(32, "little"))
    return h.hexdigest()


# -- disk layer ---------------------------------------------------------------

#: Magic prefix of every on-disk pk-cache artifact.
DISK_MAGIC = b"zkml-pk-cache/v1\n"

_DISK_CHECKSUM_BYTES = 16


class _DigestLock:
    """An advisory exclusive lock on one digest's lock file.

    ``flock`` locks are per-open-file and released on close, so a worker
    that dies mid-keygen cannot wedge the cluster: the kernel drops its
    lock and the next waiter proceeds.
    """

    def __init__(self, path: str):
        self._path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "_DigestLock":
        self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


class DiskPKCache:
    """Content-addressed, checksummed on-disk proving-key store.

    Layout under ``root``::

        pk/<circuit_digest>.pkl     checksummed pickled (pk, vk) pair
        locks/<circuit_digest>.lock advisory keygen lock (empty file)

    Artifacts are ``DISK_MAGIC || blake2b-16(payload) || payload`` where
    payload is a pickle of ``{"digest", "pk", "vk"}``.  Reads verify the
    magic, the checksum, and the embedded digest before returning keys;
    any mismatch **evicts** the file (counted as
    ``resilience_recovered_total{reason="pk_disk_evict"}``) and reports a
    miss — corrupt keys are never served.  Writes go through a
    per-process tmp file and ``os.replace`` with bounded retries (the
    registry's ``disk_write``-site idiom), so a reader never observes a
    half-written artifact.
    """

    def __init__(self, root: str, validate: bool = True,
                 write_attempts: int = 3, backoff_seconds: float = 0.05):
        self.root = root
        self.validate = validate
        self.write_attempts = write_attempts
        self.backoff_seconds = backoff_seconds
        os.makedirs(os.path.join(root, "pk"), exist_ok=True)
        os.makedirs(os.path.join(root, "locks"), exist_ok=True)
        self.loads = 0
        self.load_hits = 0
        self.stores = 0
        self.evictions = 0

    def path(self, digest: str) -> str:
        return os.path.join(self.root, "pk", "%s.pkl" % digest)

    def lock(self, digest: str) -> _DigestLock:
        """An exclusive advisory lock for this digest's keygen critical
        section (hold it across the load-miss → keygen → store window)."""
        return _DigestLock(os.path.join(self.root, "locks",
                                        "%s.lock" % digest))

    def load(self, digest: str):
        """Return the stored ``(pk, vk)`` for ``digest`` or ``None``.

        A missing file is a plain miss.  A file that fails any integrity
        check (magic, checksum, unpicklable, wrong digest inside) is
        evicted and reported as a miss — never served.
        """
        self.loads += 1
        path = self.path(digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        cause = self._validate_blob(digest, blob)
        if cause is None:
            payload = pickle.loads(
                blob[len(DISK_MAGIC) + _DISK_CHECKSUM_BYTES:])
            self.load_hits += 1
            return payload["pk"], payload["vk"]
        self.evictions += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        events.recovered("pk_disk_evict", digest=digest[:16], cause=cause)
        return None

    def _validate_blob(self, digest: str, blob: bytes) -> Optional[str]:
        """``None`` when intact, else the corruption cause."""
        if not blob.startswith(DISK_MAGIC):
            return "bad_magic"
        body = blob[len(DISK_MAGIC):]
        if len(body) < _DISK_CHECKSUM_BYTES:
            return "truncated"
        checksum, payload = (body[:_DISK_CHECKSUM_BYTES],
                             body[_DISK_CHECKSUM_BYTES:])
        if self.validate and hashlib.blake2b(
                payload, digest_size=_DISK_CHECKSUM_BYTES).digest() != checksum:
            return "checksum_mismatch"
        try:
            doc = pickle.loads(payload)
        except Exception:  # noqa: BLE001 — any unpickle failure is corruption
            return "unpicklable"
        if not isinstance(doc, dict) or doc.get("digest") != digest \
                or "pk" not in doc or "vk" not in doc:
            return "wrong_object"
        return None

    def store(self, digest: str, pk: ProvingKey, vk: VerifyingKey) -> None:
        """Atomically persist keys for ``digest`` (idempotent)."""
        payload = pickle.dumps({"digest": digest, "pk": pk, "vk": vk})
        checksum = hashlib.blake2b(
            payload, digest_size=_DISK_CHECKSUM_BYTES).digest()
        blob = DISK_MAGIC + checksum + payload
        path = self.path(digest)
        # per-process tmp name: concurrent writers never clobber each
        # other's partial file, and the final rename is atomic either way
        tmp = "%s.tmp.%d" % (path, os.getpid())
        last: Optional[BaseException] = None
        for attempt in range(1, self.write_attempts + 1):
            try:
                faults.maybe_inject("disk_write")
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
                self.stores += 1
                return
            except (OSError, faults.InjectedFault) as exc:
                last = exc
                if attempt < self.write_attempts:
                    events.retried("pk_disk_write", attempt,
                                   digest=digest[:16],
                                   error=type(exc).__name__)
                    time.sleep(self.backoff_seconds * (2 ** (attempt - 1)))
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CacheCorruptionError(
            "could not persist proving keys after %d attempts"
            % self.write_attempts, digest=digest[:16]) from last

    def stats(self) -> dict:
        return {
            "root": self.root,
            "loads": self.loads,
            "load_hits": self.load_hits,
            "stores": self.stores,
            "evictions": self.evictions,
        }


class ProvingKeyCache:
    """A small LRU of checksummed ``(pk, vk)`` pairs keyed by
    :func:`circuit_digest`, optionally layered over a :class:`DiskPKCache`."""

    def __init__(self, maxsize: int = 4, validate: bool = True,
                 disk: Optional[DiskPKCache] = None):
        self.maxsize = maxsize
        self.validate = validate
        self.disk = disk
        self._entries: "OrderedDict[str, Tuple[ProvingKey, VerifyingKey, str]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0
        self.disk_hits = 0

    def attach_disk(self, disk: Union[DiskPKCache, str, None]) -> None:
        """Layer a disk cache under this LRU (a path creates one).

        The serve cluster's worker processes call this at startup with a
        shared directory, so keygen results cross process boundaries and
        survive restarts.  ``None`` detaches.
        """
        if isinstance(disk, str):
            disk = DiskPKCache(disk)
        self.disk = disk

    def _entry_is_intact(self, digest: str) -> bool:
        """Re-verify a cached entry's checksum (the ``cache_read`` fault
        site corrupts the stored checksum to simulate bit rot)."""
        pk, vk, stored = self._entries[digest]
        try:
            faults.maybe_inject("cache_read")
        except faults.InjectedFault:
            stored = "corrupted:" + stored
        return _entry_checksum(pk, vk) == stored

    def _fetch(self, cs: ConstraintSystem, assignment: Assignment,
               scheme: CommitmentScheme, digest: str):
        """Produce keys for a digest not served from memory.

        With a disk layer, the whole load-miss → keygen → store window
        runs under the digest's advisory file lock, so concurrent worker
        processes racing the same circuit perform at most one keygen.
        Returns ``(pk, vk, from_disk)``.
        """
        if self.disk is None:
            pk, vk = keygen(cs, assignment, scheme)
            return pk, vk, False
        with self.disk.lock(digest):
            loaded = self.disk.load(digest)
            if loaded is not None:
                return loaded[0], loaded[1], True
            pk, vk = keygen(cs, assignment, scheme)
            self.disk.store(digest, pk, vk)
        return pk, vk, False

    def get_or_create(
        self,
        cs: ConstraintSystem,
        assignment: Assignment,
        scheme: CommitmentScheme,
        digest: Optional[str] = None,
        strict: bool = False,
    ) -> Tuple[ProvingKey, VerifyingKey, bool]:
        """Return cached keys for this circuit, running keygen on a miss.

        The third element reports whether keygen was skipped (a memory
        hit or a disk-layer hit).  A cache hit whose checksum fails is
        evicted and rebuilt (counted as ``rebuilds``, *not* as a miss);
        with ``strict=True`` it raises :class:`CacheCorruptionError`
        **without mutating the cache** — no eviction, no counter change —
        so a strict caller observing corruption leaves stats and entries
        exactly as they were.
        """
        if digest is None:
            digest = circuit_digest(cs, assignment, scheme.name)
        entry = self._entries.get(digest)
        rebuild = False
        if entry is not None:
            if not self.validate or self._entry_is_intact(digest):
                self._entries.move_to_end(digest)
                self.hits += 1
                return entry[0], entry[1], True
            # corruption detected.  strict: report without touching
            # anything — a raised probe must not change cache state.
            if strict:
                raise CacheCorruptionError(
                    "proving-key cache entry failed its checksum",
                    digest=digest[:16],
                )
            # non-strict: evict, then fall through to rebuild (counted
            # once, as a rebuild — never double-counted as a miss too)
            del self._entries[digest]
            rebuild = True
            events.recovered("pk_cache_rebuild", digest=digest[:16])
        pk, vk, from_disk = self._fetch(cs, assignment, scheme, digest)
        self._entries[digest] = (pk, vk, _entry_checksum(pk, vk)
                                 if self.validate else "")
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        if rebuild:
            self.rebuilds += 1
        else:
            self.misses += 1
        if from_disk:
            self.disk_hits += 1
        return pk, vk, from_disk

    def clear(self) -> None:
        """Drop every entry *and* reset the counters — post-clear stats
        describe only post-clear traffic (the disk layer's files and its
        own counters are not touched; detach it to forget them)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0
        self.disk_hits = 0

    def stats(self) -> dict:
        """A plain-dict snapshot for operator surfaces (``zkml top``).

        ``lookups == hits + misses + rebuilds`` always holds — each
        ``get_or_create`` lands in exactly one bucket, so
        ``hits / lookups`` is an honest hit rate.
        """
        lookups = self.hits + self.misses + self.rebuilds
        out = {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "rebuilds": self.rebuilds,
            "disk_hits": self.disk_hits,
            "lookups": lookups,
            "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
        }
        if self.disk is not None:
            out["disk"] = self.disk.stats()
        return out


#: Process-wide default cache used by the runtime pipeline.
GLOBAL_PK_CACHE = ProvingKeyCache()
