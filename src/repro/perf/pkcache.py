"""Proving-key cache keyed by circuit digest.

Keygen only reads witness-independent data — the constraint system, fixed
and selector values, and the copy-constraint list.  Two proves of the same
model with different inputs therefore share keys; the cache detects that
with a structural digest and skips preprocessing entirely.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional, Tuple

from repro.commit.scheme import CommitmentScheme
from repro.halo2.circuit import Assignment, ConstraintSystem
from repro.halo2.column import Column, ColumnType
from repro.halo2.keygen import ProvingKey, VerifyingKey, keygen


def circuit_digest(
    cs: ConstraintSystem, assignment: Assignment, scheme_name: str
) -> str:
    """A binding digest of everything keygen consumes.

    Covers the circuit shape (columns, gates, lookups, equality set), the
    fixed/selector grids, and the copy constraints — but *not* advice or
    instance values, which keygen never reads.
    """
    h = hashlib.blake2b(digest_size=32)

    def put(tag: str, payload: str) -> None:
        data = payload.encode()
        h.update(tag.encode())
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)

    put("scheme", scheme_name)
    put(
        "shape",
        "%d:%d:%d:%d:%d:%d"
        % (
            assignment.k,
            cs.num_advice,
            cs.num_fixed,
            cs.num_instance,
            cs.num_selectors,
            cs.field.p,
        ),
    )
    for gate in cs.gates:
        put("gate", "%s|%r|%r" % (gate.name, gate.selector, gate.constraints))
    for lk in cs.lookups:
        put("lookup", "%s|%r|%r" % (lk.name, lk.inputs, lk.table))
    put("equality", repr(cs.permuted_columns()))
    for i in range(cs.num_fixed):
        put("fixed:%d" % i, repr(assignment.column_values(Column(ColumnType.FIXED, i))))
    for i, sel in enumerate(assignment.selectors):
        put("selector:%d" % i, repr(sel))
    put("copies", repr(assignment.copies))
    return h.hexdigest()


class ProvingKeyCache:
    """A small LRU of ``(pk, vk)`` pairs keyed by :func:`circuit_digest`."""

    def __init__(self, maxsize: int = 4):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, Tuple[ProvingKey, VerifyingKey]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_create(
        self,
        cs: ConstraintSystem,
        assignment: Assignment,
        scheme: CommitmentScheme,
        digest: Optional[str] = None,
    ) -> Tuple[ProvingKey, VerifyingKey, bool]:
        """Return cached keys for this circuit, running keygen on a miss.

        The third element reports whether keygen was skipped.
        """
        if digest is None:
            digest = circuit_digest(cs, assignment, scheme.name)
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry[0], entry[1], True
        pk, vk = keygen(cs, assignment, scheme)
        self._entries[digest] = (pk, vk)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        self.misses += 1
        return pk, vk, False

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide default cache used by the runtime pipeline.
GLOBAL_PK_CACHE = ProvingKeyCache()
