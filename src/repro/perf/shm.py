"""Zero-copy shared-memory blocks for row-parallel prover work.

The pickle transport in :func:`repro.perf.parallel.parallel_map` serializes
every column vector into the pool's IPC pipe and back — at bench sizes that
serialization is a large fraction of what the workers actually compute.
This module instead places one ``uint64`` matrix in a
:mod:`multiprocessing.shared_memory` block: the parent copies the stacked
columns in once, workers attach a read-only view of their row range and
write results into a second block, and only tiny metadata (names, shapes,
row bounds) and digests cross the pipe.

Everything here is a thin wrapper; policy (chunking, fallback, ordering)
lives in :func:`repro.perf.parallel.parallel_row_map`.  Attach-side handles
are unregistered from the ``resource_tracker`` (the parent owns cleanup;
without this, Python < 3.13 child processes spuriously report — and may
prematurely unlink — blocks they merely attached to).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Tuple

import numpy as np


def create_block(shape: Tuple[int, ...]):
    """Allocate a shared ``uint64`` block; returns ``(shm, ndarray view)``.

    The caller owns the block and must ``close()`` and ``unlink()`` it.
    """
    size = int(np.prod(shape)) * 8
    shm = shared_memory.SharedMemory(create=True, size=max(size, 8))
    arr = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
    return shm, arr


def attach_block(name: str, shape: Tuple[int, ...]):
    """Attach to an existing block by name; returns ``(shm, ndarray view)``.

    The attaching process must ``close()`` (never ``unlink()``) the handle.
    Python < 3.13 registers attaches with the ``resource_tracker`` too;
    under fork (the pool's start method here) workers share the parent's
    tracker, whose name cache deduplicates, so the parent's single
    unregister-on-unlink keeps the books balanced — workers must *not*
    unregister or they race the owner's cleanup.
    """
    shm = shared_memory.SharedMemory(name=name)
    arr = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
    return shm, arr


def destroy_block(shm) -> None:
    """Close and unlink an owned block, ignoring already-gone errors."""
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - platform specific
        pass
    try:
        shm.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover
        pass
