"""Hierarchical trace spans for the prove/verify pipeline.

A :class:`Tracer` records nested, attributed spans::

    with tracer.span("keygen", k=11, scheme="kzg") as sp:
        ...
        sp.set_attr("pk_cache_hit", False)

Span nesting follows the call stack per thread (a ``threading.local``
stack), so spans opened on worker threads parent correctly.  Finished
spans are kept flat with parent ids; :meth:`Tracer.to_tree` rebuilds the
hierarchy.  Two export formats are supported:

- **JSON lines** (:meth:`Tracer.to_jsonl`): one span object per line,
  convenient for grep/jq pipelines;
- **Chrome trace_event** (:meth:`Tracer.to_chrome_trace`): complete
  ``"X"``-phase events loadable in ``chrome://tracing`` or Perfetto —
  every distinct ``(pid, tid)`` pair gets its own named lane (metadata
  events), so worker-process spans don't collapse onto the main lane;
- **collapsed stacks** (:meth:`Tracer.to_collapsed`): the
  ``flamegraph.pl`` folded format (``a;b;c <self-µs>``).

Spans recorded in ``repro.perf.parallel`` worker *processes* are shipped
back with each task's result and re-registered here via
:meth:`Tracer.ingest`, keeping the worker's own pid/tid so the exported
trace shows real parallelism.

The disabled default is :data:`NULL_TRACER`, whose :meth:`span` returns a
shared inert singleton — no span objects, no clock reads, no allocations
on the prover hot path (as long as callers pass no attribute kwargs).
The process-wide current tracer is managed with :func:`get_tracer` /
:func:`set_tracer` / :func:`use_tracer`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


class Span:
    """One timed, attributed region of work.  Context manager."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs",
                 "pid", "tid", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int = 0
        self.parent_id: Optional[int] = None
        self.start: float = 0.0
        self.end: float = 0.0
        self.pid: int = 0
        self.tid: int = 0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._exit(self)
        return False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects a process's span tree; thread-safe."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.finished: List[Span] = []

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.span_id = next(self._ids)
        span.parent_id = stack[-1].span_id if stack else None
        span.pid = os.getpid()
        span.tid = threading.get_ident()
        stack.append(span)
        span.start = self._clock()

    def _exit(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop it from wherever it is
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self.finished.append(span)

    # -- views --------------------------------------------------------------

    def spans(self) -> List[Span]:
        """Finished spans in deterministic (start time, id) order."""
        with self._lock:
            out = list(self.finished)
        out.sort(key=lambda s: (s.start, s.span_id))
        return out

    def now(self) -> float:
        """A timestamp on this tracer's clock (for :meth:`record_span`)."""
        return self._clock()

    def record_span(self, name: str, start: float, end: float,
                    parent_id: Optional[int] = None,
                    pid: Optional[int] = None, tid: Optional[int] = None,
                    **attrs: Any) -> int:
        """Register an externally-timed, already-finished span.

        The cluster path needs this: the parent process times a batch from
        dispatch to resolve across *other* threads and processes, so there
        is no ``with tracer.span(...)`` block whose lifetime matches the
        work.  Timestamps must come from this tracer's clock (the default
        ``time.perf_counter`` is CLOCK_MONOTONIC on Linux, comparable
        across forked worker processes).  Returns the new span id, ready
        to be passed to :meth:`ingest` as ``parent_id``.
        """
        span = Span(self, name, attrs)
        span.span_id = next(self._ids)
        span.parent_id = parent_id
        span.start = float(start)
        span.end = float(end)
        span.pid = pid if pid is not None else os.getpid()
        span.tid = tid if tid is not None else threading.get_ident()
        with self._lock:
            self.finished.append(span)
        return span.span_id

    def ingest(self, span_dicts: List[Dict[str, Any]],
               parent_id: Optional[int] = None) -> None:
        """Adopt spans recorded by another tracer (a worker process).

        Each dict is a :meth:`Span.as_dict` payload.  Fresh span ids are
        assigned (worker tracers restart their counters at 1, so raw ids
        would collide); parent links *within* the batch are remapped, and
        batch roots are attached under ``parent_id`` — pass the id of the
        span that dispatched the work.  The worker's own ``pid``/``tid``
        are kept, which is what gives Chrome-trace exports one lane per
        worker instead of everything collapsing onto the caller's lane.
        """
        remap: Dict[int, int] = {}
        adopted: List[Span] = []
        for payload in span_dicts:
            span = Span(self, str(payload.get("name", "?")),
                        dict(payload.get("attrs") or {}))
            span.span_id = next(self._ids)
            remap[payload.get("id", 0)] = span.span_id
            span.start = float(payload.get("start", 0.0))
            span.end = float(payload.get("end", span.start))
            span.pid = int(payload.get("pid", 0))
            span.tid = int(payload.get("tid", 0))
            adopted.append((span, payload.get("parent")))
        for span, old_parent in adopted:
            span.parent_id = remap.get(old_parent, parent_id) \
                if old_parent is not None else parent_id
        with self._lock:
            self.finished.extend(span for span, _ in adopted)

    def current_span_id(self) -> Optional[int]:
        """The id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def to_tree(self) -> List[Dict[str, Any]]:
        """Root span dicts with nested ``children`` lists."""
        nodes: Dict[int, Dict[str, Any]] = {}
        roots: List[Dict[str, Any]] = []
        for span in self.spans():
            node = span.as_dict()
            node["children"] = []
            nodes[span.span_id] = node
        for node in nodes.values():
            parent = nodes.get(node["parent"]) if node["parent"] else None
            (parent["children"] if parent else roots).append(node)
        return roots

    # -- exports ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per finished span, one span per line."""
        return "\n".join(
            json.dumps(span.as_dict(), sort_keys=True) for span in self.spans()
        ) + ("\n" if self.finished else "")

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON document (complete events).

        Thread ids are compacted to small per-process lane indices (raw
        ``threading.get_ident()`` values are huge and unstable), and each
        distinct ``(pid, tid)`` pair gets ``process_name``/``thread_name``
        metadata events, so spans ingested from worker processes render
        as their own named lanes instead of collapsing onto the caller's.
        """
        spans = self.spans()
        main_pid = os.getpid()
        lanes: Dict[tuple, int] = {}   # (pid, tid) -> compact lane index
        per_pid: Dict[int, int] = {}   # pid -> lanes allocated so far
        for span in spans:
            key = (span.pid, span.tid)
            if key not in lanes:
                lanes[key] = per_pid.get(span.pid, 0)
                per_pid[span.pid] = lanes[key] + 1
        events: List[Dict[str, Any]] = []
        for pid in sorted(per_pid):
            name = "zkml" if pid == main_pid else "zkml worker %d" % pid
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": name}})
        for (pid, tid), lane in sorted(lanes.items()):
            label = "main" if pid == main_pid and lane == 0 else \
                "thread %d" % lane if pid == main_pid else "worker"
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": lane, "args": {"name": label}})
        for span in spans:
            events.append({
                "name": span.name,
                "cat": "zkml",
                "ph": "X",
                "ts": (span.start - self._epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": lanes[(span.pid, span.tid)],
                "args": span.attrs,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_collapsed(self) -> str:
        """``flamegraph.pl`` folded stacks: ``root;child;leaf <self-µs>``.

        Each line carries a span's *self* time (duration minus the time
        covered by its direct children), so the flamegraph's widths add
        up like wall-clock does.
        """
        spans = self.spans()
        by_id = {s.span_id: s for s in spans}
        child_time: Dict[int, float] = {}
        for span in spans:
            if span.parent_id is not None and span.parent_id in by_id:
                child_time[span.parent_id] = (
                    child_time.get(span.parent_id, 0.0) + span.duration)
        lines: Dict[str, int] = {}
        for span in spans:
            stack = [span.name]
            node = span
            while node.parent_id is not None and node.parent_id in by_id:
                node = by_id[node.parent_id]
                stack.append(node.name)
            self_us = int(round(
                (span.duration - child_time.get(span.span_id, 0.0)) * 1e6))
            if self_us <= 0:
                continue
            key = ";".join(reversed(stack))
            lines[key] = lines.get(key, 0) + self_us
        return "\n".join("%s %d" % (stack, us)
                         for stack, us in sorted(lines.items())) \
            + ("\n" if lines else "")

    def write(self, path: str) -> None:
        """Write the trace by extension: ``*.jsonl`` as JSON lines,
        ``*.folded``/``*.collapsed`` as flamegraph stacks, else Chrome
        ``trace_event`` JSON."""
        with open(path, "w") as fh:
            if path.endswith(".jsonl"):
                fh.write(self.to_jsonl())
            elif path.endswith((".folded", ".collapsed")):
                fh.write(self.to_collapsed())
            else:
                json.dump(self.to_chrome_trace(), fh, indent=1, sort_keys=True)
                fh.write("\n")


class _NullSpan:
    """Inert shared span: every operation is a no-op."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``span()`` hands back one shared inert object."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> List[Span]:
        return []

    def now(self) -> float:
        return 0.0

    def record_span(self, name, start, end, parent_id=None,
                    pid=None, tid=None, **attrs) -> None:
        return None

    def ingest(self, span_dicts, parent_id=None) -> None:
        pass

    def current_span_id(self) -> None:
        return None


#: Shared no-op tracer instance (the process default).
NULL_TRACER = NullTracer()

_CURRENT: Any = NULL_TRACER


def get_tracer():
    """The process-wide current tracer (:data:`NULL_TRACER` by default)."""
    return _CURRENT


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the process-wide current tracer."""
    global _CURRENT
    _CURRENT = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer):
    """Temporarily install a tracer (restores the previous one on exit)."""
    previous = _CURRENT
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
