"""Serving-grade runtime telemetry: request ids, SLO windows, flight recorder.

The serving path (:mod:`repro.serve`) is a long-running process; this
module is what makes it *operable* while it runs and debuggable after it
dies:

- **request correlation** — :func:`new_request_id` / :func:`new_batch_id`
  mint compact ids (``req-...`` / ``batch-...``) that are carried on the
  wire, threaded through spans and structured log records (via
  :func:`repro.obs.log.bind`), and returned in ``ProofResponse`` — one
  grep over client log, server log, and a flight-recorder dump
  reconstructs a request's full lifecycle;
- **SLO windows** — :class:`SloTracker` keeps bounded ring-buffer windows
  (1m / 5m / total by default) of per-request completions and computes
  p50/p95/p99 end-to-end latency, error rate, occupancy, and throughput
  over each window.  Snapshots feed the ``status`` control op and
  ``zkml top``;
- **flight recorder** — :class:`FlightRecorder` is a bounded in-memory
  ring of recent request/batch lifecycle events.  On a worker fault, an
  overload storm, SIGTERM, or an on-demand ``dump`` op it is written out
  as a checksummed JSON artifact (:data:`FLIGHT_SCHEMA`) — the postmortem
  seam a multi-worker proving cluster inherits;
- :class:`RuntimeTelemetry` bundles the three for
  :class:`~repro.serve.service.ProvingService`; :data:`NULL_RUNTIME` is
  the inert stand-in proving the telemetry-off path stays allocation- and
  branch-light (and that proof bytes are identical either way).

Everything here is pure stdlib and never touches the prover: recording an
event is an O(1) deque append under a lock, and a ``health`` probe reads
a handful of integers.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "NULL_RUNTIME",
    "NullRuntimeTelemetry",
    "RuntimeTelemetry",
    "SloTracker",
    "SloWindow",
    "flight_checksum",
    "new_batch_id",
    "new_request_id",
    "percentile",
    "render_status",
    "verify_flight_dump",
]

#: JSON schema tag for flight-recorder dump artifacts.
FLIGHT_SCHEMA = "zkml-flight-recorder/v1"

#: Default SLO windows: (name, horizon seconds); ``None`` = since start.
DEFAULT_WINDOWS: Tuple[Tuple[str, Optional[float]], ...] = (
    ("1m", 60.0), ("5m", 300.0), ("total", None),
)

_id_counter = itertools.count(1)
_id_prefix = os.urandom(3).hex()


def _mint(kind: str) -> str:
    """A compact process-unique id: ``<kind>-<random>-<seq>``.

    The random prefix is drawn once per process so ids from a restarted
    server (or from many clients) never collide in a merged log; the
    sequence keeps ids from one process sortable in mint order.
    """
    return "%s-%s-%d" % (kind, _id_prefix, next(_id_counter))


def new_request_id() -> str:
    """Mint a request correlation id (``req-...``)."""
    return _mint("req")


def new_batch_id() -> str:
    """Mint a batch correlation id (``batch-...``)."""
    return _mint("batch")


def percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of an already-sorted sequence.

    Returns ``None`` for an empty sequence.  ``q`` is in ``[0, 1]``.
    """
    if not sorted_values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    rank = max(1, int(-(-q * len(sorted_values) // 1)))  # ceil(q*n), min 1
    return sorted_values[min(rank, len(sorted_values)) - 1]


class SloWindow:
    """One sliding window of request completions (ring-buffered).

    Samples older than ``horizon_seconds`` are evicted lazily on observe
    and snapshot; ``horizon_seconds=None`` keeps a "since start" window
    whose *percentiles* come from the most recent ``max_samples``
    completions while counts and error totals stay exact running sums.
    """

    __slots__ = ("name", "horizon", "max_samples", "_samples", "_count",
                 "_errors", "_started")

    def __init__(self, name: str, horizon_seconds: Optional[float],
                 max_samples: int = 2048, started_at: float = 0.0):
        self.name = name
        self.horizon = horizon_seconds
        self.max_samples = max_samples
        # each sample: (ts, latency_seconds, ok, occupancy)
        self._samples: deque = deque(maxlen=max_samples)
        self._count = 0
        self._errors = 0
        self._started = started_at

    def observe(self, now: float, latency: float, ok: bool,
                occupancy: int) -> None:
        self._evict(now)
        self._samples.append((now, latency, ok, occupancy))
        self._count += 1
        if not ok:
            self._errors += 1

    def _evict(self, now: float) -> None:
        if self.horizon is None:
            return
        cutoff = now - self.horizon
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def snapshot(self, now: float) -> Dict[str, Any]:
        self._evict(now)
        samples = list(self._samples)
        latencies = sorted(s[1] for s in samples)
        n = len(samples)
        if self.horizon is not None:
            count = n
            errors = sum(1 for s in samples if not s[2])
            span = self.horizon
        else:
            count = self._count
            errors = self._errors
            span = max(now - self._started, 1e-9)
        out: Dict[str, Any] = {
            "window": self.name,
            "count": count,
            "errors": errors,
            "error_rate": round(errors / count, 4) if count else 0.0,
            "throughput_rps": round(count / span, 4) if span else 0.0,
            "mean_occupancy": round(
                sum(s[3] for s in samples) / n, 2) if n else 0.0,
        }
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            value = percentile(latencies, q)
            out["%s_seconds" % label] = round(value, 4) \
                if value is not None else None
        return out


class SloTracker:
    """A set of :class:`SloWindow` fed from one observe call; thread-safe."""

    def __init__(self, windows=DEFAULT_WINDOWS, max_samples: int = 2048,
                 clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        started = clock()
        self.windows = [SloWindow(name, horizon, max_samples=max_samples,
                                  started_at=started)
                        for name, horizon in windows]

    def observe(self, latency_seconds: float, ok: bool = True,
                occupancy: int = 1) -> None:
        """Record one finished request (success or typed failure)."""
        now = self._clock()
        with self._lock:
            for window in self.windows:
                window.observe(now, latency_seconds, ok, int(occupancy))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-window SLO summaries keyed by window name."""
        now = self._clock()
        with self._lock:
            return {w.name: w.snapshot(now) for w in self.windows}


def flight_checksum(events: List[Dict[str, Any]]) -> str:
    """The integrity checksum over a dump's event list.

    Canonical form: sorted-key JSON with non-JSON values stringified —
    exactly what :meth:`FlightRecorder.dump` writes, so a reader can
    recompute and compare.
    """
    payload = json.dumps(events, sort_keys=True, default=str).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def verify_flight_dump(artifact: Dict[str, Any]) -> bool:
    """``True`` iff a dump artifact's checksum matches its events."""
    if artifact.get("schema") != FLIGHT_SCHEMA:
        return False
    return flight_checksum(artifact.get("events", [])) == \
        artifact.get("checksum")


class FlightRecorder:
    """A bounded ring buffer of lifecycle events, dumpable as JSON.

    ``record`` is cheap (timestamped dict appended to a ``deque`` under a
    lock); the ring holds the most recent ``capacity`` events so memory
    stays bounded no matter how long the service runs.  ``dump`` snapshots
    the ring into a checksummed artifact and (optionally) writes it
    atomically to disk.
    """

    def __init__(self, capacity: int = 512,
                 clock: Callable[[], float] = time.time):
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._recorded = 0  # total ever recorded (ring keeps the tail)
        self.dumps = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (older events fall off the ring)."""
        event = {"ts": round(self._clock(), 6), "kind": kind}
        event.update(fields)
        with self._lock:
            event["seq"] = self._recorded
            self._recorded += 1
            self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (>= ``len`` once the ring wraps)."""
        with self._lock:
            return self._recorded

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """A snapshot of the ring (optionally filtered by event kind)."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e["kind"] == kind]
        return out

    def dump(self, path: Optional[str] = None,
             reason: str = "on_demand") -> Dict[str, Any]:
        """Snapshot the ring into a checksummed artifact.

        With ``path``, the artifact is also written atomically (temp file
        + rename) so a dump racing a crash never leaves a torn file.
        Returns the artifact dict either way.
        """
        events = self.events()
        artifact = {
            "schema": FLIGHT_SCHEMA,
            "dumped_at": round(self._clock(), 6),
            "reason": reason,
            "events_recorded": self.recorded,
            "events": events,
            "checksum": flight_checksum(events),
        }
        if path:
            tmp = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp, "w") as fh:
                json.dump(artifact, fh, indent=1, sort_keys=True, default=str)
                fh.write("\n")
            os.replace(tmp, path)
        with self._lock:
            self.dumps += 1
        return artifact


class RuntimeTelemetry:
    """The serving path's operational bundle: SLO windows + flight ring.

    ``dump_path`` enables *automatic* dumps (batch failure, overload
    storm, SIGTERM); without it the ring still records and can be dumped
    on demand (the ``dump`` control op, or :meth:`dump` directly).
    An overload storm is ``overload_threshold`` rejections inside
    ``overload_window_seconds``; storms are rate-limited to one automatic
    dump per window so a sustained storm can't thrash the disk.

    Every *automatic* dump is additionally rate-limited per **reason**
    (:meth:`auto_dump`): at most one dump per distinct reason string per
    ``auto_dump_interval_seconds``, so a crash-looping cluster worker
    failing a batch every tick cannot write unbounded dump files — the
    first failure is captured, repeats within the interval only bump
    ``suppressed_dumps``.  Distinct reasons stay independent: a
    ``batch_failure`` dump never starves an ``overload_storm`` one.
    """

    enabled = True

    def __init__(self, slo: Optional[SloTracker] = None,
                 recorder: Optional[FlightRecorder] = None,
                 dump_path: Optional[str] = None,
                 overload_threshold: int = 16,
                 overload_window_seconds: float = 1.0,
                 auto_dump_interval_seconds: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.slo = slo if slo is not None else SloTracker(clock=clock)
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.dump_path = dump_path
        self.overload_threshold = overload_threshold
        self.overload_window_seconds = overload_window_seconds
        self.auto_dump_interval_seconds = auto_dump_interval_seconds
        self._clock = clock
        self._rejections: deque = deque(maxlen=max(4, overload_threshold * 2))
        self._last_storm_dump: Optional[float] = None
        self._last_auto_dump: Dict[str, float] = {}
        self.suppressed_dumps = 0
        self._lock = threading.Lock()

    def note(self, kind: str, **fields: Any) -> None:
        """Record one lifecycle event in the flight ring."""
        self.recorder.record(kind, **fields)

    def request_done(self, latency_seconds: float, ok: bool,
                     occupancy: int = 1) -> None:
        """Feed one finished request into every SLO window."""
        self.slo.observe(latency_seconds, ok=ok, occupancy=occupancy)

    def rejection(self) -> bool:
        """Count one backpressure rejection; ``True`` on a fresh storm.

        Callers dump the flight recorder when this trips (a storm is
        exactly the moment an operator wants the recent history).
        """
        now = self._clock()
        with self._lock:
            self._rejections.append(now)
            cutoff = now - self.overload_window_seconds
            recent = sum(1 for ts in self._rejections if ts >= cutoff)
            if recent < self.overload_threshold:
                return False
            if self._last_storm_dump is not None and \
                    now - self._last_storm_dump < self.overload_window_seconds:
                return False
            self._last_storm_dump = now
            return True

    def dump(self, reason: str = "on_demand",
             path: Optional[str] = None) -> Dict[str, Any]:
        """Dump the flight ring (to ``path``, else ``dump_path``, else
        in-memory only).  Returns the artifact."""
        return self.recorder.dump(path=path if path is not None
                                  else self.dump_path, reason=reason)

    def auto_dump(self, reason: str) -> Optional[Dict[str, Any]]:
        """An automatic dump, rate-limited per ``reason``.

        Returns the artifact when a dump was written, or ``None`` when
        suppressed (no ``dump_path``, or a dump for the same reason
        landed within ``auto_dump_interval_seconds``).  Suppressions are
        counted in ``suppressed_dumps``.
        """
        if not self.dump_path:
            return None
        now = self._clock()
        with self._lock:
            last = self._last_auto_dump.get(reason)
            if last is not None and \
                    now - last < self.auto_dump_interval_seconds:
                self.suppressed_dumps += 1
                return None
            self._last_auto_dump[reason] = now
        return self.dump(reason=reason)


class NullRuntimeTelemetry:
    """Inert telemetry: accepts every call, records nothing."""

    enabled = False
    dump_path = None
    suppressed_dumps = 0

    def note(self, kind: str, **fields: Any) -> None:
        pass

    def request_done(self, latency_seconds: float, ok: bool,
                     occupancy: int = 1) -> None:
        pass

    def rejection(self) -> bool:
        return False

    def dump(self, reason: str = "on_demand",
             path: Optional[str] = None) -> Dict[str, Any]:
        return {"schema": FLIGHT_SCHEMA, "reason": reason, "events": [],
                "events_recorded": 0, "checksum": flight_checksum([]),
                "dumped_at": 0.0}

    def auto_dump(self, reason: str) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: Shared inert instance (telemetry switched off).
NULL_RUNTIME = NullRuntimeTelemetry()


# -- status rendering (zkml top) ---------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "    -"
    if value >= 10:
        return "%5.1f" % value
    return "%5.3f" % value


def render_status(status: Dict[str, Any]) -> str:
    """Render one ``status`` snapshot as the ``zkml top`` dashboard text."""
    lines: List[str] = []
    queue = status.get("queue", {})
    lines.append(
        "zkml serve — up %.1fs  accepting=%s  queue %d/%d  "
        "inflight %d  outstanding %d" % (
            status.get("uptime_seconds", 0.0),
            "yes" if status.get("accepting") else "NO",
            queue.get("depth", 0), queue.get("max", 0),
            status.get("inflight_batches", 0),
            status.get("outstanding_requests", 0)))
    counters = status.get("counters", {})
    lines.append(
        "requests %d  proofs %d  batches %d  rejected %d  failed %d  "
        "mean occupancy %.2f" % (
            counters.get("requests", 0), counters.get("proofs", 0),
            counters.get("batches", 0), counters.get("rejected", 0),
            counters.get("failed_batches", 0),
            counters.get("mean_occupancy", 0.0)))
    slo = status.get("slo", {})
    if slo:
        lines.append("")
        lines.append("%-7s %7s %6s %7s %7s %7s %8s %6s" % (
            "window", "count", "err%", "p50", "p95", "p99", "rps", "occ"))
        for name in ("1m", "5m", "total"):
            win = slo.get(name)
            if win is None:
                continue
            lines.append("%-7s %7d %5.1f%% %7s %7s %7s %8.2f %6.2f" % (
                name, win.get("count", 0),
                100.0 * win.get("error_rate", 0.0),
                _fmt_seconds(win.get("p50_seconds")),
                _fmt_seconds(win.get("p95_seconds")),
                _fmt_seconds(win.get("p99_seconds")),
                win.get("throughput_rps", 0.0),
                win.get("mean_occupancy", 0.0)))
    pending = status.get("pending_by_model") or {}
    if pending:
        lines.append("")
        lines.append("pending: " + "  ".join(
            "%s=%d" % kv for kv in sorted(pending.items())))
    cluster = status.get("cluster") or {}
    if cluster:
        workers = cluster.get("workers", [])
        lines.append(
            "cluster: %d/%d workers alive (%d busy)  backlog %d/%d  "
            "restarts %d  redispatched %d  shed %d  evicted %d" % (
                cluster.get("alive", 0), len(workers),
                cluster.get("busy", 0),
                cluster.get("backlog_total", 0),
                cluster.get("max_backlog_batches", 0),
                cluster.get("restarts", 0),
                cluster.get("redispatched", 0),
                cluster.get("shed", 0),
                cluster.get("evicted", 0)))
        if workers and any(w.get("telemetry") for w in workers):
            lines.append("%-4s %7s %-5s %5s %5s %9s %10s %8s %8s  %s" % (
                "wkr", "pid", "state", "done", "fail", "prove(s)",
                "keygen(s)", "pk-hit", "ops", "last batch"))
            for w in workers:
                tel = w.get("telemetry") or {}
                lines.append(
                    "w%-3d %7s %-5s %5d %5d %9.3f %10.3f %8d %8d  %s"
                    % (w.get("id", -1), w.get("pid", "?"),
                       "busy" if w.get("busy") else
                       ("idle" if w.get("alive") else "DEAD"),
                       tel.get("batches", w.get("batches_done", 0)),
                       tel.get("failures", 0),
                       tel.get("prove_seconds", 0.0),
                       tel.get("keygen_seconds", 0.0),
                       tel.get("keygen_cache_hits", 0),
                       tel.get("ops_total", 0),
                       tel.get("last_batch_id") or "-"))
        elif workers:
            lines.append("workers: " + "  ".join(
                "w%d[pid %s %s %d done]" % (
                    w.get("id", -1), w.get("pid", "?"),
                    "busy" if w.get("busy") else
                    ("idle" if w.get("alive") else "DEAD"),
                    w.get("batches_done", 0))
                for w in workers))
        backlog = cluster.get("backlog") or {}
        busy_backlog = {model: dict(classes) for model, classes
                        in sorted(backlog.items())
                        if any(classes.values())}
        if busy_backlog:
            lines.append("backlog: " + "  ".join(
                "%s[%s]" % (model, " ".join(
                    "%s=%d" % kv for kv in sorted(classes.items())))
                for model, classes in busy_backlog.items()))
        by_class = cluster.get("slo_by_class") or {}
        for cls in sorted(by_class):
            win = (by_class[cls] or {}).get("total") or {}
            if not win.get("count"):
                continue
            lines.append(
                "class %-12s n=%-6d err %4.1f%%  p50 %s  p95 %s  p99 %s"
                % (cls, win.get("count", 0),
                   100.0 * win.get("error_rate", 0.0),
                   _fmt_seconds(win.get("p50_seconds")).strip(),
                   _fmt_seconds(win.get("p95_seconds")).strip(),
                   _fmt_seconds(win.get("p99_seconds")).strip()))
    batcher = status.get("batcher", {})
    if batcher:
        ema = batcher.get("ema_prove_seconds")
        lines.append("batcher: max_batch=%d  flush deadline %.3fs  "
                     "ema prove %s" % (
                         batcher.get("max_batch", 0),
                         batcher.get("flush_deadline_seconds", 0.0),
                         "%.3fs" % ema if ema is not None else "(no data)"))
    cache = status.get("pk_cache", {})
    if cache:
        lines.append("pk cache: %d/%d entries  hits %d  misses %d  "
                     "rebuilds %d" % (
                         cache.get("entries", 0), cache.get("maxsize", 0),
                         cache.get("hits", 0), cache.get("misses", 0),
                         cache.get("rebuilds", 0)))
    resilience = status.get("resilience", {})
    lines.append("resilience: degraded=%d retries=%d recovered=%d" % (
        resilience.get("degraded", 0), resilience.get("retries", 0),
        resilience.get("recovered", 0)))
    flight = status.get("flight_recorder", {})
    if flight:
        lines.append("flight recorder: %d/%d events buffered  "
                     "(%d recorded, %d dumps)" % (
                         flight.get("buffered", 0), flight.get("capacity", 0),
                         flight.get("recorded", 0), flight.get("dumps", 0)))
    return "\n".join(lines)
