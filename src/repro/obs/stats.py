"""Global low-overhead operation counters for the proving substrate.

The optimizer's cost model (paper §7.4, Eqs. 1–2) prices a layout from
*counts* — how many base/extended FFTs, how many commitments, how many
lookup passes.  To check those predictions against reality the hot paths
(:mod:`repro.field.domain`, :mod:`repro.commit`) bump the plain-integer
fields of the shared :data:`STATS` object; a single attribute increment
per O(n log n) transform is far below measurement noise, so the counters
stay on unconditionally and the disabled-observability path needs no
branching at all.

Counters are per-process: worker processes spawned by
``repro.perf.parallel`` accumulate into their own copy, so parallel runs
undercount from the parent's point of view (documented in
``docs/observability.md``).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Counter field names, in snapshot order.
#:
#: ``ntt_base``/``ntt_extended`` count *logical* per-column transforms:
#: a batched kernel call over ``m`` stacked columns bumps the counter by
#: ``m``, so counts stay comparable with the per-column implementation
#: (and with the optimizer's predicted counts).  ``ntt_plan_hits`` counts
#: reuses of cached NTT plans (twiddle stages, bit-reversal permutations,
#: power/scale tables, six-step plans); ``sparsity_skips`` counts work
#: items (transforms, commitments) skipped because a column was detected
#: to be identically zero.
FIELDS = (
    "ntt_base",
    "ntt_extended",
    "commitments",
    "openings",
    "lookup_passes",
    "transcript_absorbs",
    "challenges",
    "merkle_leaf_hashes",
    "merkle_node_hashes",
    "ntt_plan_hits",
    "sparsity_skips",
)


class ObsStats:
    """A bundle of monotonic operation counters (plain ints)."""

    __slots__ = FIELDS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in FIELDS:
            setattr(self, name, 0)

    def snapshot(self) -> Tuple[int, ...]:
        """An immutable point-in-time copy, for later :meth:`delta`."""
        return tuple(getattr(self, name) for name in FIELDS)

    def delta(self, since: Tuple[int, ...]) -> Dict[str, int]:
        """Counter increments since a :meth:`snapshot`."""
        return {
            name: getattr(self, name) - before
            for name, before in zip(FIELDS, since)
        }

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in FIELDS}


#: The process-wide counter instance every instrumented module bumps.
STATS = ObsStats()
