"""Structured circuit diagnostics (the engine behind ``zkml diagnose``).

Synthesizes a model circuit, optionally corrupts a witness cell, and runs
the MockProver *with the synthesis region map*, so each failure reports
the gate, the originating model layer and row band, and the offending
cell values — instead of a bare (gate, row) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.halo2.column import Column, ColumnType
from repro.halo2.mock import FailureList, MockProver

__all__ = ["DiagnoseReport", "diagnose_circuit", "diagnose_model",
           "tamper_advice"]


@dataclass
class DiagnoseReport:
    """Outcome of one diagnostic run."""

    model: str
    k: int
    num_cols: int
    rows_used: int
    failures: FailureList
    tampered: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        head = "%s: %d cols x 2^%d rows, %d gadget rows" % (
            self.model, self.num_cols, self.k, self.rows_used)
        if self.tampered:
            head += " (tampered %s)" % self.tampered
        if self.ok:
            return head + "\ncircuit satisfied: no constraint violations"
        return "%s\ncircuit NOT satisfied (%d violations):\n%s" % (
            head, self.failures.total, self.failures.summary())


def tamper_advice(builder, row: int, col: int, delta: int = 1) -> str:
    """Corrupt one assigned advice cell; returns a description of it."""
    asg = builder.asg
    if not 0 <= col < asg.cs.num_advice:
        raise ValueError("advice column %d out of range" % col)
    if not 0 <= row < asg.n:
        raise ValueError("row %d out of range for 2^%d rows" % (row, builder.k))
    column = Column(ColumnType.ADVICE, col)
    old = asg.value(column, row)
    asg.assign_advice(column, row, old + delta)
    return "advice[%d]@%d (%d -> %d)" % (col, row, old,
                                         asg.value(column, row))


def diagnose_circuit(builder, max_failures: Optional[int] = 32) -> FailureList:
    """MockProver check of a built circuit, with region attribution."""
    return MockProver(builder.cs, builder.asg,
                      regions=builder.regions).verify(max_failures)


def diagnose_model(
    spec,
    inputs: Dict[str, np.ndarray],
    num_cols: int = 10,
    scale_bits: int = 5,
    tamper_row: Optional[int] = None,
    tamper_col: int = 0,
    max_failures: Optional[int] = 32,
) -> DiagnoseReport:
    """Synthesize a model, optionally tamper with it, and mock-verify."""
    from repro.compiler import synthesize_model

    result = synthesize_model(spec, inputs, num_cols=num_cols,
                              scale_bits=scale_bits)
    builder = result.builder
    tampered = None
    if tamper_row is not None:
        tampered = tamper_advice(builder, tamper_row, tamper_col)
    failures = diagnose_circuit(builder, max_failures=max_failures)
    return DiagnoseReport(
        model=spec.name,
        k=builder.k,
        num_cols=num_cols,
        rows_used=builder.rows_used,
        failures=failures,
        tampered=tampered,
    )
