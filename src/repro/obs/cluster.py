"""Cluster telemetry plane: worker-side capture, parent-side folding.

``zkml serve --workers N`` proves in forked worker processes, so spans,
STATS op counts, and proving-key-cache counters accumulate in address
spaces the front end cannot see.  This module is the bridge:

- **worker side** — :func:`capture_batch` wraps one batch prove in a
  fresh :class:`~repro.obs.trace.Tracer` (installed process-wide for the
  duration so ``prove_batch`` spans land in it), snapshots the global
  :data:`~repro.obs.stats.STATS` counters before/after, and packages the
  result as a picklable :class:`WorkerTelemetry` that rides back to the
  scheduler piggybacked on the existing result queue — no extra IPC
  channel, no extra syscalls on the hot path;
- **parent side** — :func:`fold_worker_result` folds a finished batch
  into the parent :class:`~repro.obs.metrics.MetricsRegistry` under
  per-worker labels (``zkml_worker_prove_seconds_total{worker="2"}``,
  ``zkml_worker_ops_total{worker="2",op="ntt_base"}``, ...), and
  :class:`WorkerAggregate` keeps the per-worker rollup that the
  ``status`` control op (schema ``zkml-serve-status/v2``) and the
  ``zkml top`` per-worker panel report.  Span stitching itself is two
  existing calls — ``Tracer.record_span`` for the parent ``serve:batch``
  span and ``Tracer.ingest`` for the worker's tree — done where the
  batch resolves (:meth:`repro.serve.service.ProvingService`).

Timestamps inside shipped spans are ``time.perf_counter`` readings; on
Linux that is CLOCK_MONOTONIC, shared between the parent and its forked
workers, so ingested worker spans line up with parent spans on one
Chrome-trace timeline without any clock translation.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.stats import STATS
from repro.obs.trace import Tracer, use_tracer

__all__ = [
    "WorkerTelemetry",
    "WorkerAggregate",
    "capture_batch",
    "fold_worker_result",
]

#: pk-cache counter fields exported as ``zkml_worker_pk_cache`` gauges.
_PK_FIELDS = ("entries", "hits", "misses", "rebuilds", "disk_hits", "lookups")
_PK_DISK_FIELDS = ("loads", "load_hits", "stores", "evictions")


@dataclass
class WorkerTelemetry:
    """One batch's worth of worker-process observability, picklable.

    Shipped on :class:`~repro.serve.worker.BatchResult` through the
    multiprocessing result queue; everything is plain dicts/lists so the
    default pickler handles it and the parent can JSON-serialize it.
    """

    worker_id: int = -1
    pid: int = 0
    spans: List[Dict[str, Any]] = field(default_factory=list)
    stats_delta: Dict[str, int] = field(default_factory=dict)
    pk_cache: Dict[str, Any] = field(default_factory=dict)


class _CaptureHolder:
    """Mutable cell filled by :func:`capture_batch` on exit."""

    __slots__ = ("telemetry",)

    def __init__(self) -> None:
        self.telemetry: Optional[WorkerTelemetry] = None


@contextmanager
def capture_batch(job: Any, worker_id: int) -> Iterator[_CaptureHolder]:
    """Record one batch prove's spans, op deltas, and pk-cache counters.

    Installs a fresh worker-local :class:`Tracer` process-wide (so the
    pipeline's own ``prove_batch``/``keygen`` spans nest under it), opens
    a ``worker:prove`` root span attributed with the batch correlation
    id, and on exit fills ``holder.telemetry``.  The capture itself never
    touches proof construction — field ops, transcripts, and randomness
    are untouched, so proof bytes are byte-identical with capture on or
    off (test-asserted in ``tests/serve/test_cluster_telemetry.py``).
    """
    from repro.perf.pkcache import GLOBAL_PK_CACHE

    tracer = Tracer()
    before = STATS.snapshot()
    holder = _CaptureHolder()
    try:
        with use_tracer(tracer):
            with tracer.span("worker:prove",
                             worker=worker_id,
                             batch_id=job.batch_id,
                             model=job.spec.name,
                             occupancy=job.occupancy,
                             padded=job.padded_size,
                             priority=job.priority,
                             redispatches=job.redispatches):
                yield holder
    finally:
        holder.telemetry = WorkerTelemetry(
            worker_id=worker_id,
            pid=os.getpid(),
            spans=[span.as_dict() for span in tracer.spans()],
            stats_delta=STATS.delta(before),
            pk_cache=GLOBAL_PK_CACHE.stats(),
        )


def fold_worker_result(metrics: Any, result: Any) -> None:
    """Fold one worker batch result into the parent metrics registry.

    Emits the per-worker series the cluster dashboard keys on:

    - ``zkml_worker_batches_total{worker}`` / ``zkml_worker_failed_batches_total{worker}``
    - ``zkml_worker_prove_seconds_total{worker}`` / ``zkml_worker_keygen_seconds_total{worker}``
    - ``zkml_worker_pk_cache_hits_total{worker}`` (in-memory keygen cache hits)
    - ``zkml_worker_ops_total{worker,op}`` from the shipped STATS delta
    - ``zkml_worker_pk_cache{worker,field}`` gauges from the shipped
      pk-cache snapshot (disk-layer counters get a ``disk_`` prefix)

    ``metrics`` may be a :class:`~repro.obs.metrics.NullMetrics`; every
    call is then a no-op.
    """
    worker = str(result.worker_id)
    metrics.counter("zkml_worker_batches_total",
                    "Batches completed per cluster worker",
                    worker=worker).inc()
    if not result.ok:
        metrics.counter("zkml_worker_failed_batches_total",
                        "Failed batches per cluster worker",
                        worker=worker).inc()
    if result.proving_seconds:
        metrics.counter("zkml_worker_prove_seconds_total",
                        "Cumulative prove wall time per cluster worker",
                        worker=worker).inc(result.proving_seconds)
    if result.keygen_seconds:
        metrics.counter("zkml_worker_keygen_seconds_total",
                        "Cumulative keygen wall time per cluster worker",
                        worker=worker).inc(result.keygen_seconds)
    if result.keygen_cache_hit:
        metrics.counter("zkml_worker_pk_cache_hits_total",
                        "Worker batches served from a warm proving-key cache",
                        worker=worker).inc()
    telemetry = getattr(result, "telemetry", None)
    if telemetry is None:
        return
    for op, count in sorted((telemetry.stats_delta or {}).items()):
        if count:
            metrics.counter("zkml_worker_ops_total",
                            "Prover op counts per cluster worker",
                            worker=worker, op=op).inc(count)
    pk = telemetry.pk_cache or {}
    for name in _PK_FIELDS:
        if name in pk:
            metrics.gauge("zkml_worker_pk_cache",
                          "Worker-process proving-key cache counters",
                          worker=worker, field=name).set(float(pk[name]))
    disk = pk.get("disk") or {}
    for name in _PK_DISK_FIELDS:
        if name in disk:
            metrics.gauge("zkml_worker_pk_cache",
                          "Worker-process proving-key cache counters",
                          worker=worker,
                          field="disk_%s" % name).set(float(disk[name]))


class WorkerAggregate:
    """Running per-worker rollup kept by the scheduler's collect loop.

    Keyed by logical worker id, so it survives respawns (the aggregate
    spans every incarnation of worker ``N``).  :meth:`snapshot` is the
    JSON-safe ``telemetry`` block inside ``status()["cluster"]["workers"]``.
    """

    __slots__ = ("worker_id", "batches", "failures", "prove_seconds",
                 "keygen_seconds", "keygen_cache_hits", "ops",
                 "last_batch_id", "last_prove_seconds", "pk_cache")

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.batches = 0
        self.failures = 0
        self.prove_seconds = 0.0
        self.keygen_seconds = 0.0
        self.keygen_cache_hits = 0
        self.ops: Dict[str, int] = {}
        self.last_batch_id: Optional[str] = None
        self.last_prove_seconds: Optional[float] = None
        self.pk_cache: Dict[str, Any] = {}

    def note_result(self, result: Any) -> None:
        self.batches += 1
        if not result.ok:
            self.failures += 1
        self.prove_seconds += result.proving_seconds or 0.0
        self.keygen_seconds += result.keygen_seconds or 0.0
        if result.keygen_cache_hit:
            self.keygen_cache_hits += 1
        self.last_batch_id = result.batch_id
        self.last_prove_seconds = result.proving_seconds
        telemetry = getattr(result, "telemetry", None)
        if telemetry is not None:
            for op, count in (telemetry.stats_delta or {}).items():
                if count:
                    self.ops[op] = self.ops.get(op, 0) + int(count)
            if telemetry.pk_cache:
                self.pk_cache = dict(telemetry.pk_cache)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "failures": self.failures,
            "prove_seconds": round(self.prove_seconds, 6),
            "keygen_seconds": round(self.keygen_seconds, 6),
            "keygen_cache_hits": self.keygen_cache_hits,
            "ops_total": int(sum(self.ops.values())),
            "ops": dict(sorted(self.ops.items())),
            "last_batch_id": self.last_batch_id,
            "last_prove_seconds": self.last_prove_seconds,
            "pk_cache": dict(self.pk_cache),
        }
