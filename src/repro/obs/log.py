"""A small structured logger for the CLI and tooling.

Levels are the usual ``debug < info < warning < error``.  ``info`` output
is the CLI's user-facing text and goes to stdout unprefixed (so existing
output stays byte-identical at the default level); ``debug`` / ``warning``
/ ``error`` go to stderr with a level prefix.  Messages accept printf
args plus structured ``key=value`` fields::

    log = get_logger("cli")
    log.info("proving: %.2f s", seconds)
    log.debug("pk cache", hit=True, digest=d.hex())

The threshold is set by :func:`configure` (CLI ``--quiet`` / ``-v``
flags) or the ``ZKML_LOG_LEVEL`` environment variable (name or number);
flags win over the environment.

Correlation fields can be *bound* to the current context with
:func:`bind` — every record emitted while the binding is active carries
them as structured fields, so serving-path logs are grep-correlatable by
``request_id`` / ``batch_id`` without parsing message text::

    with obs_log.bind(request_id=rid):
        log.debug("accepted")        # -> "[debug serve] accepted request_id=req-..."

Bindings use a :mod:`contextvars` variable, so they are per-thread (and
per-async-task) and nest; explicit ``key=value`` fields on a call win
over bound ones.
"""

from __future__ import annotations

import contextvars
import os
import sys
from contextlib import contextmanager
from typing import Any, Dict, Tuple

__all__ = ["Logger", "bind", "bound_fields", "configure", "get_logger",
           "get_level", "set_level"]

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

LEVEL_NAMES: Dict[str, int] = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "warn": WARNING,
    "error": ERROR,
}

ENV_VAR = "ZKML_LOG_LEVEL"

_level = INFO

#: Context-bound correlation fields, stored as a sorted tuple of pairs so
#: the default is shared and immutable (contextvars must not leak mutable
#: state between contexts).
_context: "contextvars.ContextVar[Tuple[Tuple[str, Any], ...]]" = \
    contextvars.ContextVar("zkml_log_fields", default=())


@contextmanager
def bind(**fields: Any):
    """Bind correlation fields (``request_id=...``) to the current context.

    Every log record emitted inside the ``with`` block carries them as
    structured ``key=value`` fields.  Bindings nest (inner values win)
    and are scoped to the current thread/task via :mod:`contextvars`.
    """
    merged = dict(_context.get())
    merged.update(fields)
    token = _context.set(tuple(sorted(merged.items())))
    try:
        yield
    finally:
        _context.reset(token)


def bound_fields() -> Dict[str, Any]:
    """The correlation fields bound to the current context."""
    return dict(_context.get())


def _parse_level(value) -> int:
    if isinstance(value, int):
        return value
    name = str(value).strip().lower()
    if name in LEVEL_NAMES:
        return LEVEL_NAMES[name]
    try:
        return int(name)
    except ValueError:
        raise ValueError("unknown log level %r (use %s)"
                         % (value, "/".join(sorted(LEVEL_NAMES))))


def set_level(level) -> None:
    """Set the global threshold (a name like ``"debug"`` or an int)."""
    global _level
    _level = _parse_level(level)


def get_level() -> int:
    return _level


def configure(verbosity: int = 0, quiet: bool = False,
              env: Dict[str, str] = os.environ) -> None:
    """Resolve the threshold from CLI flags and ``ZKML_LOG_LEVEL``.

    ``--quiet`` forces errors-only; ``-v`` (any count) forces debug;
    otherwise the environment variable applies, defaulting to info.
    """
    if quiet:
        set_level(ERROR)
    elif verbosity > 0:
        set_level(DEBUG)
    elif env.get(ENV_VAR):
        set_level(env[ENV_VAR])
    else:
        set_level(INFO)


class Logger:
    """A named logger writing through the global threshold."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _format(self, msg: str, args, fields: Dict[str, Any]) -> str:
        text = (msg % args) if args else msg
        bound = _context.get()
        if bound:
            merged = dict(bound)
            merged.update(fields)
            fields = merged
        if fields:
            text += " " + " ".join(
                "%s=%s" % (k, v) for k, v in sorted(fields.items())
            )
        return text

    def debug(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= DEBUG:
            print("[debug %s] %s" % (self.name, self._format(msg, args, fields)),
                  file=sys.stderr)

    def info(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= INFO:
            print(self._format(msg, args, fields), file=sys.stdout)

    def warning(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= WARNING:
            print("warning: %s" % self._format(msg, args, fields),
                  file=sys.stderr)

    def error(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= ERROR:
            print("error: %s" % self._format(msg, args, fields),
                  file=sys.stderr)


_loggers: Dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """The shared logger instance for ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        logger = Logger(name)
        _loggers[name] = logger
    return logger
