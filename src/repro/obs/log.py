"""A small structured logger for the CLI and tooling.

Levels are the usual ``debug < info < warning < error``.  ``info`` output
is the CLI's user-facing text and goes to stdout unprefixed (so existing
output stays byte-identical at the default level); ``debug`` / ``warning``
/ ``error`` go to stderr with a level prefix.  Messages accept printf
args plus structured ``key=value`` fields::

    log = get_logger("cli")
    log.info("proving: %.2f s", seconds)
    log.debug("pk cache", hit=True, digest=d.hex())

The threshold is set by :func:`configure` (CLI ``--quiet`` / ``-v``
flags) or the ``ZKML_LOG_LEVEL`` environment variable (name or number);
flags win over the environment.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict

__all__ = ["Logger", "configure", "get_logger", "get_level", "set_level"]

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

LEVEL_NAMES: Dict[str, int] = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "warn": WARNING,
    "error": ERROR,
}

ENV_VAR = "ZKML_LOG_LEVEL"

_level = INFO


def _parse_level(value) -> int:
    if isinstance(value, int):
        return value
    name = str(value).strip().lower()
    if name in LEVEL_NAMES:
        return LEVEL_NAMES[name]
    try:
        return int(name)
    except ValueError:
        raise ValueError("unknown log level %r (use %s)"
                         % (value, "/".join(sorted(LEVEL_NAMES))))


def set_level(level) -> None:
    """Set the global threshold (a name like ``"debug"`` or an int)."""
    global _level
    _level = _parse_level(level)


def get_level() -> int:
    return _level


def configure(verbosity: int = 0, quiet: bool = False,
              env: Dict[str, str] = os.environ) -> None:
    """Resolve the threshold from CLI flags and ``ZKML_LOG_LEVEL``.

    ``--quiet`` forces errors-only; ``-v`` (any count) forces debug;
    otherwise the environment variable applies, defaulting to info.
    """
    if quiet:
        set_level(ERROR)
    elif verbosity > 0:
        set_level(DEBUG)
    elif env.get(ENV_VAR):
        set_level(env[ENV_VAR])
    else:
        set_level(INFO)


class Logger:
    """A named logger writing through the global threshold."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _format(self, msg: str, args, fields: Dict[str, Any]) -> str:
        text = (msg % args) if args else msg
        if fields:
            text += " " + " ".join(
                "%s=%s" % (k, v) for k, v in sorted(fields.items())
            )
        return text

    def debug(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= DEBUG:
            print("[debug %s] %s" % (self.name, self._format(msg, args, fields)),
                  file=sys.stderr)

    def info(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= INFO:
            print(self._format(msg, args, fields), file=sys.stdout)

    def warning(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= WARNING:
            print("warning: %s" % self._format(msg, args, fields),
                  file=sys.stderr)

    def error(self, msg: str, *args: Any, **fields: Any) -> None:
        if _level <= ERROR:
            print("error: %s" % self._format(msg, args, fields),
                  file=sys.stderr)


_loggers: Dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """The shared logger instance for ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        logger = Logger(name)
        _loggers[name] = logger
    return logger
