"""Metrics registry: counters / gauges / histograms + Prometheus export.

A :class:`MetricsRegistry` holds named metric families, each optionally
split by labels::

    reg = MetricsRegistry()
    reg.counter("zkml_ntt_invocations", "NTT calls", domain="base").inc(3)
    reg.gauge("zkml_layer_rows", "rows per layer", layer="fc_1").set(120)
    print(reg.to_prometheus())

Two higher-level recorders tie the registry to the circuit pipeline:

- :func:`record_circuit_stats` — per-circuit shape statistics (rows used
  vs available, assigned cells, copy constraints, per-layer and
  per-gadget row breakdowns) from a synthesized model;
- :func:`record_prover_run` — observed operation counts (NTTs, hashes,
  commitments) plus the cost model's *predicted* counts, enabling the
  predicted-vs-actual report (:func:`render_predicted_vs_actual`) that
  checks the optimizer's Algorithm-1 accounting against what the prover
  actually did.

:data:`NULL_METRICS` is the inert default so call sites never branch.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "predicted_counts",
    "predicted_vs_actual",
    "record_circuit_stats",
    "record_costmodel_drift",
    "record_prover_run",
    "render_predicted_vs_actual",
]

#: Default histogram bucket upper bounds (seconds-flavored).
DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping (spec order matters:
    backslashes first, then quotes and newlines)."""
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP lines escape backslashes and newlines (but not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (k, _escape_label_value(v)) for k, v in key)


def _render_value(value: float) -> str:
    if float(value).is_integer():
        return "%d" % int(value)
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile from the cumulative buckets.

        Prometheus-style linear interpolation inside the first bucket
        whose cumulative count reaches ``q * count``.  Returns ``None``
        for an empty histogram.  Observations above the largest finite
        bucket clamp to that bound (there is no +Inf upper edge to
        interpolate toward) — same behavior as ``histogram_quantile``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        prev_cum, prev_bound = 0, 0.0
        for bound, cum in zip(self.buckets, self.counts):
            if cum >= rank:
                in_bucket = cum - prev_cum
                if in_bucket == 0:
                    return bound
                frac = (rank - prev_cum) / in_bucket
                return prev_bound + (bound - prev_bound) * min(frac, 1.0)
            prev_cum, prev_bound = cum, bound
        return self.buckets[-1] if self.buckets else None


class _Family:
    __slots__ = ("kind", "help", "instances")

    def __init__(self, kind: str, help_text: str):
        self.kind = kind
        self.help = help_text
        self.instances: Dict[LabelKey, Any] = {}


class MetricsRegistry:
    """Named metric families, exported in the Prometheus text format.

    Family/instance creation is lock-protected so concurrent recorders
    (the serve worker threads) can share one registry; increments on the
    returned metric objects stay plain (single bytecode under the GIL).
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, help_text: str,
             labels: Dict[str, Any], factory):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    "metric %r already registered as a %s"
                    % (name, family.kind)
                )
            if help_text and not family.help:
                family.help = help_text
            key = _label_key(labels)
            metric = family.instances.get(key)
            if metric is None:
                metric = factory()
                family.instances[key] = metric
            return metric

    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        return self._get("gauge", name, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get("histogram", name, help_text, labels,
                         lambda: Histogram(buckets))

    # -- reads ---------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """A counter/gauge's current value (KeyError if absent)."""
        metric = self._families[name].instances[_label_key(labels)]
        return metric.value

    def values(self, name: str) -> Dict[LabelKey, float]:
        """All label-instances of a counter/gauge family."""
        family = self._families[name]
        return {key: m.value for key, m in family.instances.items()}

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Nested plain-dict view (for JSON emission and tests)."""
        out: Dict[str, Dict[str, float]] = {}
        for name, family in sorted(self._families.items()):
            if family.kind == "histogram":
                continue
            out[name] = {
                _render_labels(key) or "": metric.value
                for key, metric in sorted(family.instances.items())
            }
        return out

    # -- export --------------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        for name, family in sorted(self._families.items()):
            if family.help:
                lines.append("# HELP %s %s" % (name,
                                               _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (name, family.kind))
            for key, metric in sorted(family.instances.items()):
                labels = _render_labels(key)
                if family.kind == "histogram":
                    # observe() keeps the counts cumulative already
                    for bound, count in zip(metric.buckets, metric.counts):
                        bucket_key = key + (("le", _render_value(bound)),)
                        lines.append("%s_bucket%s %d" % (
                            name, _render_labels(bucket_key), count))
                    inf_key = key + (("le", "+Inf"),)
                    lines.append("%s_bucket%s %d" % (
                        name, _render_labels(inf_key), metric.count))
                    lines.append("%s_sum%s %s" % (
                        name, labels, _render_value(metric.sum)))
                    lines.append("%s_count%s %d" % (name, labels, metric.count))
                else:
                    lines.append("%s%s %s" % (
                        name, labels, _render_value(metric.value)))
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())


class NullMetrics:
    """Inert registry stand-in: accepts every call, records nothing."""

    def counter(self, name: str, help_text: str = "", **labels: Any):
        return _NULL_METRIC

    gauge = counter

    def histogram(self, name: str, help_text: str = "", buckets=None,
                  **labels: Any):
        return _NULL_METRIC


class _NullMetric:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()

#: Shared no-op registry instance.
NULL_METRICS = NullMetrics()


# -- pipeline recorders ------------------------------------------------------


def _assigned_cells(columns: List[List[Optional[int]]]) -> int:
    return sum(
        sum(1 for v in column if v is not None) for column in columns
    )


def record_circuit_stats(registry: MetricsRegistry, synthesized,
                         model: str = "") -> None:
    """Record a synthesized circuit's shape statistics.

    ``synthesized`` is a :class:`repro.compiler.SynthesizedModel` (duck
    typed: only ``.layout`` and ``.builder`` are read).  Row counts come
    from the same :class:`~repro.compiler.physical.PhysicalLayout` that
    ``zkml inspect`` reports, so the two always agree; cell/copy counts
    are measured on the actual witness grid.
    """
    layout = synthesized.layout
    builder = synthesized.builder
    asg = builder.asg
    cs = builder.cs
    model = model or layout.spec.name
    g = registry.gauge

    g("zkml_rows_total", "grid rows (2^k)", model=model).set(asg.n)
    g("zkml_rows_used", "gadget rows actually laid out",
      model=model).set(builder.rows_used)
    g("zkml_k", "log2 grid rows", model=model).set(builder.k)
    g("zkml_table_rows", "rows claimed by the largest lookup table",
      model=model).set(builder.table_rows_needed())
    g("zkml_gadget_rows", "gadget rows per the layout simulator",
      model=model).set(layout.gadget_rows)

    g("zkml_cells_assigned", "assigned advice cells", model=model,
      kind="advice").set(_assigned_cells(asg.advice))
    g("zkml_cells_assigned", "", model=model,
      kind="fixed").set(_assigned_cells(asg.fixed))
    g("zkml_cells_assigned", "", model=model,
      kind="instance").set(_assigned_cells(asg.instance))
    g("zkml_copy_constraints", "recorded equality constraints",
      model=model).set(len(asg.copies))

    g("zkml_columns", "column counts by kind", model=model,
      kind="advice").set(cs.num_advice)
    g("zkml_columns", "", model=model, kind="fixed").set(cs.num_fixed)
    g("zkml_columns", "", model=model, kind="instance").set(cs.num_instance)
    g("zkml_columns", "", model=model, kind="selector").set(cs.num_selectors)
    g("zkml_gates", "user gates", model=model).set(len(cs.gates))
    g("zkml_lookup_arguments", "lookup arguments", model=model).set(
        len(cs.lookups))

    # a lookup argument constrains every row of the grid
    g("zkml_lookup_rows", "rows constrained by lookup arguments",
      model=model).set(len(cs.lookups) * asg.n)

    for layer, rows in sorted(layout.per_layer_rows.items()):
        g("zkml_layer_rows", "gadget rows per model layer", model=model,
          layer=layer).set(rows)
    for gate in cs.gates:
        if gate.selector is None:
            continue
        rows = sum(asg.selectors[gate.selector.index])
        g("zkml_gadget_selector_rows", "rows with each gadget selector on",
          model=model, gate=gate.name).set(rows)


def record_prover_run(registry: MetricsRegistry, model: str,
                      observed: Dict[str, int],
                      predicted: Dict[str, float],
                      phase_seconds: Optional[Dict[str, float]] = None,
                      slots: int = 1) -> None:
    """Record one proving run's observed and predicted operation counts.

    ``slots`` is the number of inferences the proof covers (1 for
    ``prove_model``, the batch size for ``prove_batch``): the run counter
    advances by ``slots`` so a batch of 8 counts as 8 proved inferences,
    and per-phase wall-clock is additionally recorded *amortized per
    slot* — a batch must not masquerade as one fast single run.
    """
    c = registry.counter
    slots = max(1, int(slots))
    c("zkml_prover_slots_total",
      "inference slots proved (batch proves count each slot)",
      model=model).inc(slots)
    c("zkml_prover_runs_total", "proving runs (one per proof)",
      model=model).inc()
    ntt_domains = {"ntt_base": "base", "ntt_extended": "extended"}
    hash_sites = {
        "transcript_absorbs": "transcript",
        "merkle_leaf_hashes": "merkle_leaf",
        "merkle_node_hashes": "merkle_node",
    }
    for key, count in sorted(observed.items()):
        if key in ntt_domains:
            c("zkml_ntt_invocations", "NTT transforms during proving",
              model=model, domain=ntt_domains[key]).inc(count)
        elif key in hash_sites:
            c("zkml_hash_invocations", "hash calls during proving",
              model=model, site=hash_sites[key]).inc(count)
        else:
            c("zkml_prover_ops", "other counted prover operations",
              model=model, op=key).inc(count)
    for key, count in sorted(predicted.items()):
        registry.gauge("zkml_predicted_ops",
                       "cost-model predicted operation counts (Eqs. 1-2)",
                       model=model, op=key).set(count)
    for phase, secs in sorted((phase_seconds or {}).items()):
        registry.gauge("zkml_phase_seconds", "prover phase wall-clock",
                       model=model, phase=phase).set(round(secs, 6))
        if slots > 1:
            registry.gauge("zkml_slot_phase_seconds",
                           "prover phase wall-clock amortized per batch slot",
                           model=model, phase=phase).set(
                round(secs / slots, 6))
    if slots > 1:
        registry.gauge("zkml_batch_slots", "slots in the last batch proof",
                       model=model).set(slots)


def record_costmodel_drift(registry: MetricsRegistry, model: str,
                           profile: str, predicted_seconds: float,
                           actual_seconds: float) -> Dict[str, float]:
    """Record how far a hardware profile's prediction is from reality.

    The drift metric is ``|ln(predicted / actual)|`` — symmetric in
    over- and under-prediction, 0 when exact.  Returns the recorded
    values so callers (the calibration report) can embed them.
    """
    ratio = predicted_seconds / actual_seconds if actual_seconds > 0 \
        else float("inf")
    drift = abs(math.log(ratio)) if 0 < ratio < float("inf") else float("inf")
    g = registry.gauge
    g("zkml_costmodel_predicted_seconds",
      "cost-model predicted total proving seconds",
      model=model, profile=profile).set(round(predicted_seconds, 6))
    g("zkml_costmodel_actual_seconds",
      "measured proving seconds the prediction is judged against",
      model=model, profile=profile).set(round(actual_seconds, 6))
    g("zkml_costmodel_drift", "abs(ln(predicted/actual)); 0 is perfect",
      model=model, profile=profile).set(
        round(drift, 6) if drift != float("inf") else -1.0)
    return {"predicted_seconds": predicted_seconds,
            "actual_seconds": actual_seconds,
            "ratio": ratio if ratio != float("inf") else None,
            "drift": drift if drift != float("inf") else None}


# -- predicted vs actual -----------------------------------------------------


def predicted_counts(layout, scheme_name: str) -> Dict[str, float]:
    """The cost model's per-phase operation counts for a layout."""
    from repro.optimizer.cost_model import num_ffts, num_msms

    n_fft = num_ffts(layout)
    return {
        "ffts_base": round(n_fft, 2),
        "ffts_extended": round(n_fft + 1, 2),
        "msms": round(num_msms(layout, scheme_name), 2),
        "lookup_passes": float(layout.num_lookups),
    }


#: predicted-count key -> observed-counter key
_PAIRINGS = (
    ("ffts_base", "ntt_base"),
    ("ffts_extended", "ntt_extended"),
    ("msms", "commitments"),
    ("lookup_passes", "lookup_passes"),
)


def predicted_vs_actual(predicted: Dict[str, float],
                        observed: Dict[str, int]) -> List[Dict[str, Any]]:
    """Rows diffing cost-model counts against observed prover counts."""
    rows = []
    for pred_key, obs_key in _PAIRINGS:
        if pred_key not in predicted or obs_key not in observed:
            continue
        p, a = predicted[pred_key], observed[obs_key]
        rows.append({
            "quantity": pred_key,
            "predicted": p,
            "actual": a,
            "ratio": round(a / p, 3) if p else None,
        })
    return rows


def render_predicted_vs_actual(rows: List[Dict[str, Any]]) -> str:
    """A small fixed-width predicted-vs-actual report."""
    if not rows:
        return "(no predicted-vs-actual data)"
    lines = ["%-16s %10s %10s %8s" % ("quantity", "predicted", "actual",
                                      "ratio")]
    for row in rows:
        ratio = "%8.2f" % row["ratio"] if row["ratio"] is not None else "     n/a"
        lines.append("%-16s %10.1f %10d %s" % (
            row["quantity"], row["predicted"], row["actual"], ratio))
    return "\n".join(lines)
