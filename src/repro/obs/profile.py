"""Layer-level proving profiler (the engine behind ``zkml profile``).

The cost model prices a circuit from aggregate counts, but "which *model
layer* is expensive?" needs attribution: this module proves a model once
under a tracer + metrics registry and joins three sources the pipeline
already produces —

- the layouter's **region map** (``builder.regions``: the contiguous row
  band each layer's gadgets claimed),
- the tracer's **spans** (``layer:<name>`` synthesis wall-clock; the
  prover phase spans),
- the witness grid itself (assigned advice cells, copy constraints, and
  per-gate selector occupancy inside each band),

into one :class:`ProfileReport`: a ranked per-layer table, a JSON
document, and (via the returned tracer) Chrome-trace / flamegraph
siblings.  The invariant the report is built on: **the per-layer row
counts plus the unattributed remainder sum exactly to the circuit's used
rows** — attribution never invents or loses rows.

Proving time cannot be measured per layer directly (the prover works on
whole columns), so ``est_prove_seconds`` *models* it by each layer's row
share — clearly labeled as modeled, and consistent with how Eqs. 1–2
scale with rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.halo2.column import ColumnType
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["LayerProfile", "ProfileReport", "profile_model",
           "attribute_layers"]

#: Schema tag for the JSON report.
SCHEMA = "zkml-profile/v1"

#: Name of the bucket holding rows outside every layer region.
UNATTRIBUTED = "(unattributed)"


@dataclass
class LayerProfile:
    """Everything attributed to one model layer's row band."""

    name: str
    kind: str
    start: int
    end: int
    rows: int
    row_share: float
    advice_cells: int
    copies: int
    #: gate name -> rows inside this band with that gate's selector on.
    selector_rows: Dict[str, int] = dataclass_field(default_factory=dict)
    #: Synthesis wall-clock from this layer's ``layer:<name>`` span(s).
    synth_seconds: float = 0.0
    #: Modeled share of proving time (row_share × total prove seconds).
    est_prove_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "rows": self.rows,
            "row_share": round(self.row_share, 6),
            "advice_cells": self.advice_cells,
            "copies": self.copies,
            "selector_rows": dict(sorted(self.selector_rows.items())),
            "synth_seconds": round(self.synth_seconds, 6),
            "est_prove_seconds": round(self.est_prove_seconds, 6),
        }


@dataclass
class ProfileReport:
    """One profiled proving run, attributed down to model layers."""

    model: str
    scheme: str
    k: int
    num_cols: int
    rows_total: int
    rows_used: int
    table_rows: int
    layers: List[LayerProfile]
    keygen_seconds: float
    prove_seconds: float
    phase_seconds: Dict[str, float]
    observed_counts: Dict[str, int]
    predicted_counts: Dict[str, float]
    #: gate name -> selector-on rows over the whole grid.
    gadget_rows: Dict[str, int] = dataclass_field(default_factory=dict)
    lookup_arguments: int = 0
    copy_constraints_total: int = 0

    def attributed_rows(self) -> int:
        """Sum of per-layer rows (including the unattributed bucket) —
        always equals :attr:`rows_used`."""
        return sum(layer.rows for layer in self.layers)

    def ranked(self) -> List[LayerProfile]:
        """Layers by descending row count (the profiler's headline sort)."""
        return sorted(self.layers, key=lambda lp: (-lp.rows, lp.start))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "model": self.model,
            "scheme": self.scheme,
            "k": self.k,
            "num_cols": self.num_cols,
            "rows_total": self.rows_total,
            "rows_used": self.rows_used,
            "attributed_rows": self.attributed_rows(),
            "table_rows": self.table_rows,
            "keygen_seconds": round(self.keygen_seconds, 6),
            "prove_seconds": round(self.prove_seconds, 6),
            "phase_seconds": {k: round(v, 6)
                              for k, v in sorted(self.phase_seconds.items())},
            "observed_counts": dict(self.observed_counts),
            "predicted_counts": dict(self.predicted_counts),
            "gadget_rows": dict(sorted(self.gadget_rows.items())),
            "lookup_arguments": self.lookup_arguments,
            "copy_constraints_total": self.copy_constraints_total,
            "layers": [layer.as_dict() for layer in self.ranked()],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self, top: Optional[int] = None) -> str:
        """The ranked per-layer table ``zkml profile`` prints."""
        head = [
            "%s [%s]: %d cols x 2^%d rows, %d/%d rows used, prove %.3fs"
            % (self.model, self.scheme, self.num_cols, self.k,
               self.rows_used, self.rows_total, self.prove_seconds),
            "%-22s %-10s %7s %6s %9s %7s %9s %9s" % (
                "layer", "kind", "rows", "share", "cells", "copies",
                "synth s", "~prove s"),
        ]
        ranked = self.ranked()
        shown = ranked if top is None else ranked[:top]
        for lp in shown:
            head.append("%-22s %-10s %7d %5.1f%% %9d %7d %9.4f %9.4f" % (
                lp.name[:22], lp.kind[:10], lp.rows, 100.0 * lp.row_share,
                lp.advice_cells, lp.copies, lp.synth_seconds,
                lp.est_prove_seconds))
        if top is not None and len(ranked) > top:
            rest = ranked[top:]
            head.append("  ... and %d more layers (%d rows)" % (
                len(rest), sum(lp.rows for lp in rest)))
        if self.gadget_rows:
            busiest = sorted(self.gadget_rows.items(),
                             key=lambda kv: -kv[1])[:6]
            head.append("gadgets: " + ", ".join(
                "%s=%d" % (gate, rows) for gate, rows in busiest))
        return "\n".join(head)


def _top_level_regions(regions) -> List:
    """Regions not nested inside an earlier region (layer bands)."""
    kept: List = []
    for region in regions:
        if any(outer.start <= region.start and region.end <= outer.end
               and outer is not region for outer in kept):
            continue
        kept.append(region)
    return kept


def _advice_cells_in(asg, start: int, end: int) -> int:
    return sum(
        sum(1 for v in column[start:end] if v is not None)
        for column in asg.advice
    )


def attribute_layers(builder, tracer: Optional[Tracer] = None,
                     prove_seconds: float = 0.0) -> List[LayerProfile]:
    """Attribute the builder's grid to its layer regions.

    Returns one :class:`LayerProfile` per top-level region plus, when the
    regions don't cover every used row, an ``(unattributed)`` bucket —
    so the row counts always sum to ``builder.rows_used``.
    """
    asg = builder.asg
    cs = builder.cs
    rows_used = builder.rows_used
    spans_by_layer: Dict[str, float] = {}
    if tracer is not None:
        for span in tracer.spans():
            if span.name.startswith("layer:"):
                name = span.name[len("layer:"):]
                spans_by_layer[name] = (spans_by_layer.get(name, 0.0)
                                       + span.duration)

    bands = _top_level_regions(builder.regions)
    profiles: List[LayerProfile] = []
    covered = 0
    for region in bands:
        start, end = region.start, min(region.end, rows_used)
        rows = max(0, end - start)
        covered += rows
        share = rows / rows_used if rows_used else 0.0
        selector_rows = {}
        for gate in cs.gates:
            if gate.selector is None:
                continue
            on = sum(asg.selectors[gate.selector.index][start:end])
            if on:
                selector_rows[gate.name] = on
        profiles.append(LayerProfile(
            name=region.name,
            kind=region.kind,
            start=start,
            end=end,
            rows=rows,
            row_share=share,
            advice_cells=_advice_cells_in(asg, start, end),
            copies=0,
            selector_rows=selector_rows,
            synth_seconds=spans_by_layer.get(region.name, 0.0),
            est_prove_seconds=share * prove_seconds,
        ))

    # copy constraints: attributed to the band containing the copy's
    # first advice endpoint (the cell being constrained back to its home)
    def band_index(row: int) -> Optional[int]:
        for i, lp in enumerate(profiles):
            if lp.start <= row < lp.end:
                return i
        return None

    unattributed_copies = 0
    for col_a, row_a, col_b, row_b in asg.copies:
        row = None
        if col_a.kind is ColumnType.ADVICE:
            row = row_a
        elif col_b.kind is ColumnType.ADVICE:
            row = row_b
        index = band_index(row) if row is not None else None
        if index is None:
            unattributed_copies += 1
        else:
            profiles[index].copies += 1

    leftover = rows_used - covered
    if leftover > 0 or unattributed_copies:
        share = leftover / rows_used if rows_used else 0.0
        profiles.append(LayerProfile(
            name=UNATTRIBUTED,
            kind="",
            start=-1,
            end=-1,
            rows=max(0, leftover),
            row_share=max(0.0, share),
            advice_cells=0,
            copies=unattributed_copies,
            est_prove_seconds=max(0.0, share) * prove_seconds,
        ))
    return profiles


def profile_model(
    spec,
    inputs: Dict[str, np.ndarray],
    scheme_name: str = "kzg",
    num_cols: int = 10,
    scale_bits: int = 5,
    lookup_bits: Optional[int] = None,
    jobs: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    use_pk_cache: bool = True,
):
    """Prove one inference under full observability and attribute it.

    Returns ``(report, tracer, result)``: the :class:`ProfileReport`, the
    :class:`~repro.obs.trace.Tracer` holding the run's spans (write it
    out for the Chrome-trace / flamegraph siblings), and the underlying
    :class:`~repro.runtime.pipeline.ProveResult`.
    """
    from repro.obs.trace import use_tracer
    from repro.runtime.pipeline import prove_model

    tracer = Tracer()
    registry = registry if registry is not None else MetricsRegistry()
    with use_tracer(tracer):
        result = prove_model(
            spec, inputs, scheme_name=scheme_name, num_cols=num_cols,
            scale_bits=scale_bits, lookup_bits=lookup_bits, jobs=jobs,
            tracer=tracer, metrics=registry, use_pk_cache=use_pk_cache,
            keep_synthesized=True,
        )
    builder = result.synthesized.builder
    layers = attribute_layers(builder, tracer=tracer,
                              prove_seconds=result.proving_seconds)
    gadget_rows = {}
    for gate in builder.cs.gates:
        if gate.selector is None:
            continue
        on = sum(builder.asg.selectors[gate.selector.index])
        if on:
            gadget_rows[gate.name] = on
    report = ProfileReport(
        model=spec.name,
        scheme=scheme_name,
        k=builder.k,
        num_cols=num_cols,
        rows_total=builder.asg.n,
        rows_used=builder.rows_used,
        table_rows=builder.table_rows_needed(),
        layers=layers,
        keygen_seconds=result.keygen_seconds,
        prove_seconds=result.proving_seconds,
        phase_seconds=dict(result.phase_seconds),
        observed_counts=dict(result.observed_counts),
        predicted_counts=dict(result.predicted_counts),
        gadget_rows=gadget_rows,
        lookup_arguments=len(builder.cs.lookups),
        copy_constraints_total=len(builder.asg.copies),
    )
    if registry is not None:
        for lp in layers:
            registry.gauge("zkml_profile_layer_rows",
                           "profiler row attribution per layer",
                           model=spec.name, layer=lp.name).set(lp.rows)
            registry.gauge("zkml_profile_layer_synth_seconds",
                           "profiler synthesis wall-clock per layer",
                           model=spec.name, layer=lp.name).set(
                round(lp.synth_seconds, 6))
    return report, tracer, result
