"""Observability for the prove/verify pipeline (tracing, metrics, logs).

The paper's optimizer prices a circuit layout from per-phase operation
counts (Algorithm 1, Eqs. 1–2); this package makes the runtime report the
same vocabulary so predictions can be checked against reality:

- :mod:`repro.obs.trace` — hierarchical spans
  (``synthesize -> layout -> keygen -> witness -> commit/helpers/
  quotient/openings -> verify``) exported as JSON lines or Chrome
  ``trace_event`` JSON (loadable in ``chrome://tracing`` / Perfetto);
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with a
  Prometheus text exporter plus the predicted-vs-actual report that diffs
  the cost model's counts against observed ones;
- :mod:`repro.obs.stats` — the process-wide operation counters the hot
  paths bump (NTTs, commitments, hashes);
- :mod:`repro.obs.log` — the CLI's structured logger
  (``--quiet`` / ``-v`` / ``ZKML_LOG_LEVEL``);
- :mod:`repro.obs.cluster` — the cluster telemetry plane: worker-process
  span/STATS/pk-cache capture shipped over the result queue and folded
  into the parent registry under per-worker labels;
- :mod:`repro.obs.diagnose` — MockProver failures enriched with layer /
  region / cell context (``zkml diagnose``), imported lazily because it
  pulls in the compiler.

Everything is disabled by default through inert singletons
(:data:`NULL_TRACER`, :data:`NULL_METRICS`): the prover hot loop never
allocates or branches on "is observability on".
"""

from repro.obs.cluster import (
    WorkerAggregate,
    WorkerTelemetry,
    capture_batch,
    fold_worker_result,
)
from repro.obs.log import configure as configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    predicted_counts,
    predicted_vs_actual,
    record_circuit_stats,
    record_prover_run,
    render_predicted_vs_actual,
)
from repro.obs.stats import STATS, ObsStats
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "NullTracer",
    "NULL_TRACER",
    "ObsStats",
    "STATS",
    "Span",
    "Tracer",
    "WorkerAggregate",
    "WorkerTelemetry",
    "capture_batch",
    "configure_logging",
    "fold_worker_result",
    "get_logger",
    "get_tracer",
    "predicted_counts",
    "predicted_vs_actual",
    "record_circuit_stats",
    "record_prover_run",
    "render_predicted_vs_actual",
    "set_tracer",
    "use_tracer",
]
