"""Fixed-point quantization.

All tensor values inside a circuit are fixed-point numbers over the prime
field (paper §4.1): a real ``x`` is represented by the signed integer
``round(x * 2^scale_bits)``, encoded into the field with negatives
wrapping.  ZKML *chooses* the scale factor per model: the pointwise
non-linearities are lookup tables whose size is bounded by the grid
length, so the activation range at a given precision dictates the minimum
number of rows (§5.1) — a coupling the optimizer exploits.
"""

from repro.quantize.fixed_point import (
    FixedPoint,
    div_round,
    max_table_input_bits,
    requantize,
)

__all__ = ["FixedPoint", "div_round", "requantize", "max_table_input_bits"]
