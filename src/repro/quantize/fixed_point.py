"""Fixed-point encode/decode and rescaling helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.resilience.errors import QuantizationRangeError


def div_round(a: int, b: int) -> int:
    """Rounded integer division, half rounding up (the paper's DivRound).

    Exactly the circuit identity ``Round(a/b) = floor((2a + b) / 2b)`` used
    by the DivRound and VarDiv gadgets (§5.1), so the Python reference and
    the constraint system agree bit-for-bit, including at the .5 boundary
    and for signed numerators (Python floor division already floors).
    """
    if b == 0:
        raise ZeroDivisionError("div_round by zero")
    if b < 0:
        a, b = -a, -b
    return (2 * a + b) // (2 * b)


@dataclass(frozen=True)
class FixedPoint:
    """A fixed-point format with ``scale_bits`` fractional bits."""

    scale_bits: int

    def __post_init__(self) -> None:
        if self.scale_bits < 0:
            raise QuantizationRangeError("scale_bits must be nonnegative",
                                         scale_bits=self.scale_bits)

    @property
    def factor(self) -> int:
        """The scale factor SF = 2^scale_bits."""
        return 1 << self.scale_bits

    # -- scalars -------------------------------------------------------------

    def encode(self, x: float) -> int:
        """Quantize a real number to its fixed-point integer."""
        return div_round(int(round(x * self.factor * 2)), 2)

    def decode(self, v: int) -> float:
        """The real number a fixed-point integer represents."""
        return v / self.factor

    # -- arrays --------------------------------------------------------------

    def encode_array(self, x: np.ndarray) -> np.ndarray:
        """Quantize a float array to object-dtype Python ints (exact).

        Values must be finite and fit in an int64 after scaling — a
        non-finite or overflowing value raises
        :class:`QuantizationRangeError` instead of silently wrapping
        (``astype(np.int64)`` truncates out-of-range floats).
        """
        arr = np.asarray(x, dtype=np.float64)
        if arr.size and not np.all(np.isfinite(arr)):
            raise QuantizationRangeError(
                "cannot quantize non-finite values",
                scale_bits=self.scale_bits,
            )
        scaled = np.rint(arr * self.factor)
        if scaled.size and (np.abs(scaled) >= 2.0 ** 63).any():
            worst = float(np.abs(arr).max())
            raise QuantizationRangeError(
                "value %g overflows the fixed-point range at scale 2^%d"
                % (worst, self.scale_bits),
                scale_bits=self.scale_bits, value=worst,
            )
        return scaled.astype(np.int64).astype(object)

    def decode_array(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=np.float64) / self.factor

    # -- fixed-point arithmetic helpers ---------------------------------------

    def mul_rescale(self, a: int, b: int) -> int:
        """Multiply two fixed-point values and rescale back (§5.1)."""
        return div_round(a * b, self.factor)

    def div_rescale(self, a: int, b: int) -> int:
        """Divide two fixed-point values, keeping the scale."""
        if b == 0:
            raise ZeroDivisionError("fixed-point division by zero")
        return div_round(a * self.factor, b)


def requantize(value: int, from_bits: int, to_bits: int) -> int:
    """Change a value's scale factor, rounding on downscale."""
    if to_bits >= from_bits:
        return value << (to_bits - from_bits)
    return div_round(value, 1 << (from_bits - to_bits))


def max_table_input_bits(k: int) -> int:
    """Widest lookup-table input (in bits) a 2^k-row grid can host.

    A pointwise non-linearity table enumerates every representable input,
    so its row count — at most the grid length — caps the fixed-point
    precision (§5.1).  One row is reserved for the gadgets' default tuple.
    """
    if k < 1:
        raise QuantizationRangeError("grid must have at least 2 rows", k=k)
    return k - 1
