from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "scipy"],
    },
    entry_points={"console_scripts": ["zkml=repro.cli:main"]},
    python_requires=">=3.9",
)
