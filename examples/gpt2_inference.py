"""Proving a (miniature) GPT-2 forward pass — the paper's headline model.

A full transformer block — token+position embeddings, LayerNorm,
multi-head self-attention with softmaxed scores, the GELU MLP, residual
connections, and a weight-tied logits head — proven end to end with the
real prover, with the next-token logits public.

Run:  python examples/gpt2_inference.py
"""

import numpy as np

from repro.model import GraphBuilder, run_float
from repro.runtime import prove_model, verify_model_proof

VOCAB, SEQ, DIM, HEADS, MLP = 12, 3, 8, 2, 16


def build_tiny_gpt(prompt_tokens):
    gb = GraphBuilder("tiny-gpt", materialize=True, seed=42)
    wte_shape = (VOCAB, DIM)
    tokens = gb.gather(prompt_tokens, wte_shape, name="wte")
    pos = gb.gather(list(range(SEQ)), (SEQ, DIM), name="wpe")
    x = gb.add(tokens, pos, name="embed")

    # one transformer block
    h = gb.layer_norm(x, DIM, name="ln1")
    attn = gb.attention_block(h, SEQ, DIM, HEADS, name="attn")
    x = gb.add(x, attn, name="res1")
    h = gb.layer_norm(x, DIM, name="ln2")
    h = gb.fully_connected(h, DIM, MLP, name="mlp1")
    h = gb.activation(h, "gelu", name="gelu")
    h = gb.fully_connected(h, MLP, DIM, name="mlp2")
    x = gb.add(x, h, name="res2")
    x = gb.layer_norm(x, DIM, name="ln_f")

    # weight-tied logits head: reuse the embedding matrix transposed
    wte = gb._layers[0].params["table"]
    logits = gb.add_layer(
        "fully_connected", [x], {"units": VOCAB},
        {"weight": wte.T.copy(), "bias": np.zeros(VOCAB)},
        name="lm_head",
    )
    return gb.build([logits])


def main():
    prompt = [3, 7, 1]  # fixed-length token ids (paper §4.1: NLP inputs
    # are fixed-length; loops/branches unroll)
    model = build_tiny_gpt(prompt)
    print("tiny GPT: %d params, %d layers" % (model.param_count(),
                                              len(model.layers)))

    result = prove_model(model, {}, scheme_name="kzg", num_cols=12,
                         scale_bits=6)
    logits = result.outputs[model.outputs[0]].astype(np.int64)
    next_token = int(np.argmax(logits[-1]))
    print("proved the forward pass in %.2fs on a 2^%d grid"
          % (result.proving_seconds, result.k))
    print("proven next-token prediction: %d" % next_token)

    # the prediction matches the float model
    float_logits = run_float(model, {})[model.outputs[0]]
    assert int(np.argmax(float_logits[-1])) == next_token

    assert verify_model_proof(result.vk, result.proof, result.instance,
                              "kzg")
    print("verifier accepted the generation step")

    # changing the published logits is caught
    forged = [list(col) for col in result.instance]
    forged[-1][0] = (forged[-1][0] + 9) % result.vk.field.p
    assert not verify_model_proof(result.vk, result.proof, forged, "kzg", strict=False)
    print("forged logits rejected")


if __name__ == "__main__":
    main()
