"""Tour of the layout optimizer on the paper's eight models.

Reproduces the §9.4 case studies: per-model optimal configurations, the
KZG/IPA difference, and the time-vs-size objective trade-off.

Run:  python examples/optimizer_tour.py
"""

from repro.model import get_model, model_names
from repro.optimizer import optimize_layout, profile_for_model


def main():
    print("%-10s %-4s %-28s %6s %6s %10s %12s"
          % ("model", "pcs", "plan", "cols", "k", "prove(s)", "proof(B)"))
    for name in model_names():
        spec = get_model(name, "paper")
        hw = profile_for_model(name)
        for scheme in ("kzg", "ipa"):
            res = optimize_layout(spec, hw, scheme, scale_bits=12)
            print("%-10s %-4s %-28s %6d %6d %10.1f %12d"
                  % (name, scheme, res.layout.plan, res.layout.num_cols,
                     res.layout.k, res.proving_time, res.proof_size))

    print("\ncase study: GPT-2 objectives (KZG)")
    spec = get_model("gpt2", "paper")
    hw = profile_for_model("gpt2")
    for objective in ("time", "size"):
        res = optimize_layout(spec, hw, "kzg", scale_bits=12,
                              objective=objective)
        print("  %-5s -> %2d cols x 2^%d, %.1f s, %d bytes"
              % (objective, res.layout.num_cols, res.layout.k,
                 res.proving_time, res.proof_size))


if __name__ == "__main__":
    main()
