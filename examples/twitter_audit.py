"""Trustless audit of a recommendation feed (the paper's Figure 1/2).

The provider commits to a MaskNet-style ranking model; for a user's
candidate tweets it publishes the scores *and a ZK-SNARK per score* that
each came from the committed model on the tweet's features.  An auditor
verifies the proofs and checks the feed order matches the proven scores —
without ever seeing the model weights.

Run:  python examples/twitter_audit.py
"""

import numpy as np

from repro.model import GraphBuilder
from repro.runtime import prove_model, verify_model_proof


def build_ranking_model():
    """A miniature MaskNet: instance-guided mask over tweet features."""
    gb = GraphBuilder("masknet-ranker", materialize=True, seed=3)
    feats = gb.input("features", (1, 8))
    m = gb.fully_connected(feats, 8, 4, name="mask_fc1")
    m = gb.activation(m, "relu", name="mask_relu")
    m = gb.fully_connected(m, 4, 8, name="mask_fc2")
    m = gb.activation(m, "sigmoid", name="mask_gate")
    gated = gb.mul(feats, m, name="mask_mul")
    h = gb.fully_connected(gated, 8, 6, name="hidden")
    h = gb.activation(h, "relu", name="hidden_relu")
    score = gb.fully_connected(h, 6, 1, name="head")
    score = gb.activation(score, "sigmoid", name="score")
    return gb.build([score])


def main():
    model = build_ranking_model()
    print("ranking model: %d params (weights stay private)"
          % model.param_count())

    rng = np.random.default_rng(11)
    candidate_tweets = ["cat photo", "breaking news", "crypto spam"]
    features = {t: rng.uniform(-1, 1, (1, 8)) for t in candidate_tweets}

    # The provider scores each tweet and proves each inference.
    scores, proofs = {}, {}
    for tweet in candidate_tweets:
        result = prove_model(model, {"features": features[tweet]},
                             scheme_name="kzg", num_cols=10, scale_bits=6)
        scores[tweet] = int(result.outputs[model.outputs[0]].reshape(-1)[0])
        proofs[tweet] = result
        print("scored %-14r -> %4d (proved in %.2fs)"
              % (tweet, scores[tweet], result.proving_seconds))

    feed = sorted(candidate_tweets, key=scores.get, reverse=True)
    print("published feed:", feed)

    # The auditor verifies every proof and recomputes the ordering from
    # the public scores.
    for tweet in candidate_tweets:
        result = proofs[tweet]
        assert verify_model_proof(result.vk, result.proof, result.instance,
                                  "kzg"), tweet
    audited = sorted(candidate_tweets, key=scores.get, reverse=True)
    assert audited == feed
    print("audit passed: feed order matches the proven scores")

    # Every proof must come from the same committed model: the verifying
    # key digest doubles as the model commitment.
    digests = {proofs[t].vk.digest() for t in candidate_tweets}
    assert len(digests) == 1
    print("model commitment consistent across proofs: %s..."
          % digests.pop().hex()[:16])

    # A dishonest provider that inflates a score is caught.
    victim = proofs[feed[-1]]
    forged = [list(col) for col in victim.instance]
    forged[0][0] = (forged[0][0] + 50) % victim.vk.field.p
    assert not verify_model_proof(victim.vk, victim.proof, forged, "kzg", strict=False)
    print("forged score rejected by the auditor")


if __name__ == "__main__":
    main()
