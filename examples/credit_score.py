"""Trustless credit scoring (paper §2).

A borrower's on-chain history is summarized into features; a committed
scoring model produces a credit score, and a ZK-SNARK convinces the
lender the score was computed honestly — the lender never sees the
model, the borrower never reveals more than the score.

Run:  python examples/credit_score.py
"""

import numpy as np

from repro.ml import MLPClassifier
from repro.model import run_float
from repro.runtime import prove_model, verify_model_proof


def train_scoring_model(rng):
    """Train a small creditworthiness classifier on synthetic histories.

    Features: [balance, tx volume, age of account, liquidations, ...];
    label 1 = repaid, 0 = defaulted in our synthetic world.
    """
    n = 400
    x = rng.uniform(-1, 1, (n, 6))
    # repayment correlates with balance + account age - liquidations
    logit = 2.0 * x[:, 0] + 1.5 * x[:, 2] - 2.5 * x[:, 3] + rng.normal(0, .3, n)
    y = (logit > 0).astype(int)
    clf = MLPClassifier([6, 8, 2], seed=1).fit(x, y, epochs=40)
    print("scoring model trained: accuracy %.1f%% on the training pool"
          % (clf.accuracy(x, y) * 100))
    return clf


def main():
    rng = np.random.default_rng(13)
    clf = train_scoring_model(rng)
    model = clf.to_model_spec("credit-score", (6,), softmax=True)

    borrower_history = rng.uniform(-1, 1, (6,))
    # trained logits can reach +-8, so widen the lookup tables to cover
    # the softmax input range at this scale factor
    result = prove_model(model, {"image": borrower_history},
                         scheme_name="kzg", num_cols=10, scale_bits=5,
                         lookup_bits=10)
    probs = result.outputs[model.outputs[0]].reshape(-1)
    score = int(probs[1])  # fixed-point P(repay)
    print("credit score (fixed-point P(repay) at SF=32): %d" % score)
    print("proved in %.2fs; proof is %d modeled bytes"
          % (result.proving_seconds, result.modeled_proof_bytes))

    # the lender verifies
    assert verify_model_proof(result.vk, result.proof, result.instance,
                              "kzg")
    print("lender verified the score against the committed model")

    # and a borrower who edits their score is caught
    forged = [list(col) for col in result.instance]
    forged[0][1] = (forged[0][1] + 30) % result.vk.field.p
    assert not verify_model_proof(result.vk, result.proof, forged, "kzg", strict=False)
    print("inflated score rejected")


if __name__ == "__main__":
    main()
