"""Quickstart: define a model, prove one inference, verify the proof.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.model import GraphBuilder
from repro.runtime import prove_model, verify_model_proof


def main():
    # 1. Define a small model with the graph builder (or load one through
    #    repro.model.transpile from the tflite-like flat format).
    gb = GraphBuilder("quickstart", materialize=True)
    x = gb.input("features", (1, 8))
    h = gb.fully_connected(x, 8, 6)
    h = gb.activation(h, "relu")
    h = gb.fully_connected(h, 6, 3)
    out = gb.softmax(h)
    spec = gb.build([out])
    print(spec.summary())

    # 2. Prove one inference.  The prover commits to the (private) weights
    #    and input, and the model outputs become public values.
    features = np.random.default_rng(7).uniform(-1, 1, (1, 8))
    result = prove_model(spec, {"features": features}, scheme_name="kzg",
                         num_cols=10, scale_bits=6)
    print("\nproved in %.2fs on a %d-column x 2^%d grid"
          % (result.proving_seconds, result.num_cols, result.k))
    print("class probabilities (fixed-point):",
          [int(v) for v in result.outputs[out].reshape(-1)])

    # 3. Anyone can verify with the verifying key and public values.
    ok = verify_model_proof(result.vk, result.proof, result.instance, "kzg")
    print("verification:", "OK" if ok else "FAILED")
    assert ok

    # 4. A tampered public output is rejected.
    forged = [list(col) for col in result.instance]
    forged[0][0] += 1
    ok = verify_model_proof(result.vk, result.proof, forged, "kzg",
                            strict=False)
    print("tampered output rejected:", not ok)
    assert not ok


if __name__ == "__main__":
    main()
