"""The full Figure-2 audit flow with the first-class audit API.

1. The provider commits to a model (ModelCommitment) and publishes the
   commitment.
2. Every served inference is proven and appended to a hash-chained
   AuditLog.
3. The auditor replays the log: every proof must verify, every entry
   must bind to the committed model, and the chain must be intact.

Run:  python examples/audit_flow.py
"""

import numpy as np

from repro.model import GraphBuilder
from repro.runtime import AuditLog, ModelCommitment, audit


def build_model():
    gb = GraphBuilder("prod-scorer", materialize=True, seed=6)
    x = gb.input("request", (1, 6))
    h = gb.fully_connected(x, 6, 4)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 4, 2)
    return gb.build([out])


def main():
    rng = np.random.default_rng(8)
    model = build_model()

    # 1. publish the model commitment (weights stay private)
    commitment = ModelCommitment.commit(model)
    print("published model commitment:", commitment.hex()[:24], "...")

    # 2. serve users, proving every inference into the chained log
    log = AuditLog(model, scheme_name="kzg", num_cols=10, scale_bits=6)
    for i in range(3):
        entry = log.serve({"request": rng.uniform(-1, 1, (1, 6))})
        print("served request %d: proof in %.2fs, chain %s..."
              % (i, entry.result.proving_seconds,
                 entry.chain_digest.hex()[:12]))

    # 3. the auditor checks everything
    findings = audit(log, commitment)
    print("audit findings:", findings or "none — log is clean")
    assert findings == []

    # 4. a provider that silently swaps models is caught: the verifying
    #    keys (which commit to the weights in fixed columns) differ
    rogue_model = GraphBuilder("prod-scorer", materialize=True, seed=99)
    x = rogue_model.input("request", (1, 6))
    h = rogue_model.fully_connected(x, 6, 4)
    h = rogue_model.activation(h, "relu")
    out = rogue_model.fully_connected(h, 4, 2)
    rogue = rogue_model.build([out])
    rogue_log = AuditLog(rogue, scheme_name="kzg", num_cols=10, scale_bits=6)
    log.entries.append(rogue_log.serve({"request": rng.uniform(-1, 1, (1, 6))}))
    findings = audit(log, commitment)
    print("after a silent model swap:", [str(f) for f in findings])
    assert any(f.kind in ("model", "chain") for f in findings)


if __name__ == "__main__":
    main()
