"""Proof of a training step (paper Table 2's "CNN training" row).

ZKML circuits are not limited to inference: a gradient-descent update is
just more tensor arithmetic.  This example proves one SGD step of a
linear model — forward pass, error, outer-product gradient, and weight
update — so a verifier can check that published weights W' really are
W - lr * dL/dW for the committed batch, without seeing W or the data.

Run:  python examples/training_step.py
"""

import numpy as np

from repro.model import GraphBuilder, run_float
from repro.runtime import prove_model, verify_model_proof


def build_sgd_step(d_in=4, d_out=3):
    """One SGD step on squared error: W' = W - lr * x^T (xW - t)."""
    gb = GraphBuilder("sgd-step", materialize=True)
    w = gb.input("weights", (d_in, d_out))
    x = gb.input("x", (1, d_in))
    t = gb.input("target", (1, d_out))
    lr = gb.input("lr", (1, 1))
    y = gb.batch_matmul(x, w, name="forward")
    e = gb.add_layer("sub", [y, t], name="error")
    x_t = gb.transpose(x, name="x_transposed")
    grad = gb.batch_matmul(x_t, e, name="gradient")
    step = gb.mul(grad, lr, name="scaled_gradient")
    w_new = gb.add_layer("sub", [w, step], name="updated_weights")
    return gb.build([w_new])


def main():
    rng = np.random.default_rng(21)
    model = build_sgd_step()
    weights = rng.uniform(-1, 1, (4, 3))
    x = rng.uniform(-1, 1, (1, 4))
    target = rng.uniform(-1, 1, (1, 3))
    lr = np.array([[0.25]])

    inputs = {"weights": weights, "x": x, "target": target, "lr": lr}

    # float reference of the update
    expected = weights - lr * (x.T @ (x @ weights - target))

    result = prove_model(model, inputs, scheme_name="kzg", num_cols=10,
                         scale_bits=7)
    updated = result.outputs[model.outputs[0]].astype(np.float64) / (1 << 7)
    err = np.abs(updated - expected).max()
    print("proved one SGD step in %.2fs (max fixed-point error %.4f)"
          % (result.proving_seconds, err))
    assert err < 0.05

    assert verify_model_proof(result.vk, result.proof, result.instance,
                              "kzg")
    print("verifier accepted the updated weights")

    # a dishonest trainer publishing different weights is caught
    forged = [list(col) for col in result.instance]
    forged[0][0] = (forged[0][0] + 5) % result.vk.field.p
    assert not verify_model_proof(result.vk, result.proof, forged, "kzg", strict=False)
    print("forged weight update rejected")


if __name__ == "__main__":
    main()
