"""Private biometric authentication (paper §2).

A user proves that the embedding of a fresh photo matches their enrolled
face template — close enough under squared distance — without revealing
either embedding.  The public statement is just the match bit; combined
with an attested camera this gives trustless "is a real person" checks.

Run:  python examples/biometric_auth.py
"""

import numpy as np

from repro.model import GraphBuilder
from repro.runtime import prove_model, verify_model_proof


def build_matcher(dim=6):
    """Embed the photo with a small MLP and compare with the enrolled
    template via SquaredDifference + mean + thresholded sigmoid."""
    gb = GraphBuilder("face-matcher", materialize=True, seed=9)
    photo = gb.input("photo", (1, dim))
    template = gb.input("template", (1, dim))
    emb = gb.fully_connected(photo, dim, dim, name="embed")
    emb = gb.activation(emb, "tanh", name="embed_act")
    diff = gb.add_layer("squared_difference", [emb, template],
                        name="sq_diff")
    dist = gb.add_layer("reduce_mean", [diff], {"axis": 1}, name="distance")
    return gb.build([dist])


def main():
    model = build_matcher()
    rng = np.random.default_rng(4)

    # enrolment: the template is the embedding of the enrolment photo
    from repro.model import run_float

    enroll_photo = rng.uniform(-1, 1, (1, 6))
    template = np.tanh(
        enroll_photo @ np.asarray(model.layers[0].params["weight"])
        + np.asarray(model.layers[0].params["bias"])
    )

    # a genuine login photo (small perturbation) and an imposter
    genuine = enroll_photo + rng.normal(0, 0.02, (1, 6))
    imposter = rng.uniform(-1, 1, (1, 6))

    threshold = 0.05
    for label, photo in (("genuine", genuine), ("imposter", imposter)):
        result = prove_model(
            model, {"photo": photo, "template": template},
            scheme_name="kzg", num_cols=10, scale_bits=7,
        )
        dist_fixed = int(result.outputs[model.outputs[0]].reshape(-1)[0])
        dist = dist_fixed / (1 << 7)
        accepted = dist < threshold
        ok = verify_model_proof(result.vk, result.proof, result.instance,
                                "kzg")
        print("%-9s distance=%.4f -> %s (proof %s, %.2fs)"
              % (label, dist, "ACCEPT" if accepted else "REJECT",
                 "valid" if ok else "INVALID", result.proving_seconds))
        assert ok
        if label == "genuine":
            assert accepted
        else:
            assert not accepted
    print("biometric check complete: embeddings never left the prover")


if __name__ == "__main__":
    main()
