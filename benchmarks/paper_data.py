"""The paper's reported numbers, for paper-vs-measured printing.

Source: ZKML (EuroSys '24), Tables 5-14 and §9.4/§9.5.
"""

# Table 6: model -> (proving s, verification s, proof bytes) for KZG.
TABLE6_KZG = {
    "gpt2": (3651.67, 18.70, 28128),
    "diffusion": (3600.57, 0.09278, 28704),
    "twitter": (358.7, 0.02241, 6816),
    "dlrm": (34.4, 0.01226, 18816),
    "mobilenet": (1225.5, 0.01767, 17664),
    "resnet18": (52.9, 0.01184, 15744),
    "vgg16": (637.14, 0.00962, 12064),
    "mnist": (2.45, 0.00669, 6560),
}

# Table 7: same for IPA.
TABLE7_IPA = {
    "gpt2": (3949.60, 11.98, 16512),
    "diffusion": (3658.77, 5.17, 30464),
    "twitter": (364.9, 2.28, 8448),
    "dlrm": (30.0, 0.11, 18816),
    "mobilenet": (1217.6, 3.34, 19360),
    "resnet18": (46.5, 0.20, 17120),
    "vgg16": (619.4, 2.49, 17184),
    "mnist": (2.36, 0.02226, 7680),
}

# Table 8: model -> (fp32 accuracy %, zkml accuracy %).
TABLE8_ACCURACY = {
    "mnist": (99.06, 99.06),
    "vgg16": (90.36, 90.37),
    "resnet18": (91.88, 91.87),
}

# Table 9: system -> (accuracy %, proving s, verification s, proof bytes).
TABLE9 = {
    "zkml-resnet18": (91.9, 52.9, 0.012, 15300),
    "zkml-vgg16": (90.4, 584.1, 0.016, 12100),
    "zkcnn": (90.3, 88.3, 0.059, 341000),
    "vcnn": (90.4, 31 * 3600, 20.0, 340),
}

# Table 10: model -> (optimized s, fixed-config s, improvement %).
TABLE10_FIXED_CONFIG = {
    "gpt2": (3651.7, 5952.0, 63),
    "diffusion": (3600.6, 4989.7, 39),
    "twitter": (358.7, 464.0, 29),
    "dlrm": (34.4, 42.4, 23),
    "mobilenet": (1225.5, 2407.8, 96),
    "resnet18": (52.9, 74.8, 41),
    "vgg16": (637.1, 1474.0, 131),
    "mnist": (2.5, 4.4, 76),
}

# Table 11: model -> (zkml s, fixed-gadget s, improvement %).
TABLE11_FIXED_GADGETS = {
    "mnist": (2.5, 6.2, 148),
    "dlrm": (34.4, 859.5, 2399),
    "resnet18": (52.9, 812.6, 1436),
}

# Table 12: model -> (pruned optimizer s, non-pruned optimizer s).
TABLE12_PRUNING = {
    "mnist": (6.3, 9.0),
    "resnet18": (28.1, 77.5),
    "gpt2": (185.3, 277.2),
}

# Table 13: condition -> proving s (single-row vs multi-row gadget mix).
TABLE13_MULTIROW = {
    "single-row": 18.55,
    "multi-row adder": 18.59,
    "multi-row max": 18.58,
    "multi-row dot": 18.58,
}

# Table 14: model -> ((time-opt s, bytes), (size-opt s, bytes)).
TABLE14_SIZE_OPT = {
    "mnist": ((2.45, 6560), (2.97, 4800)),
    "vgg16": ((637.14, 12064), (819.8, 7680)),
    "resnet18": ((52.9, 15744), (87.3, 6112)),
    "twitter": ((358.7, 6816), (544.8, 5056)),
    "dlrm": ((34.4, 18816), (42.2, 6368)),
}

# §9.4: optimizer vs exhaustive benchmarking speedups.
SEC94_SPEEDUPS = {
    "mnist-kzg": 575,
    "mnist-ipa": 491,
    "gpt2-kzg": 5900,
}

# §9.5: Kendall rank correlation of cost estimates vs true proving time.
SEC95_KENDALL = {"kzg": 0.89, "ipa": 0.88}
