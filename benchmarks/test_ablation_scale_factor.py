"""Ablation: the scale-factor / grid-size coupling (paper §4.1, §5.1).

"Choosing the scale factor appropriately is critical for high
performance": every extra bit of fixed-point precision doubles the
pointwise-non-linearity tables, which live in the grid, which can double
the row count and hence the proving time — while accuracy improves.
This bench sweeps scale_bits and shows both sides of the trade.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.compiler import build_physical_layout
from repro.layers.base import LayoutChoices
from repro.ml import MLPClassifier, synthetic_digits
from repro.model import get_model, run_fixed
from repro.optimizer import R6I_8XLARGE, estimate_cost

SCALE_SWEEP = (6, 8, 10, 12, 14)


def test_ablation_scale_factor_vs_cost_and_accuracy(benchmark):
    spec = get_model("mnist", "paper")

    x, y = synthetic_digits(300, seed=6)
    tx, ty = synthetic_digits(80, seed=66)
    clf = MLPClassifier([64, 32, 10], seed=3).fit(x, y, epochs=30)
    acc_spec = clf.to_model_spec("scale-sweep", (8, 8, 1))
    tx, ty = tx[:40], ty[:40]
    float_acc = clf.accuracy(tx, ty)

    rows = []
    costs, table_rows, accs = [], [], []
    for bits in SCALE_SWEEP:
        layout = build_physical_layout(spec, LayoutChoices(), 16,
                                       scale_bits=bits)
        cost = estimate_cost(layout, R6I_8XLARGE, "kzg").total
        hits = 0
        for img, label in zip(tx, ty):
            out = run_fixed(acc_spec, {"image": img}, bits)
            hits += int(np.argmax(out[acc_spec.outputs[0]]
                                  .reshape(-1).astype(np.int64)) == label)
        acc = hits / len(ty)
        costs.append(cost)
        table_rows.append(layout.table_rows)
        accs.append(acc)
        rows.append((bits, layout.table_rows, layout.k, "%.1f s" % cost,
                     "%.1f%%" % (acc * 100)))
    print_table(
        "Ablation: scale factor vs table size, proving cost, accuracy "
        "(float acc %.1f%%)" % (float_acc * 100),
        ("scale_bits", "table rows", "k", "est. proving", "accuracy"),
        rows,
    )

    # tables grow with precision, monotonically
    assert all(a < b for a, b in zip(table_rows, table_rows[1:]))
    # proving cost is monotone nondecreasing in precision
    assert all(a <= b * 1.001 for a, b in zip(costs, costs[1:]))
    # and the extremes differ materially (the optimizer's incentive)
    assert costs[-1] > 2 * costs[0]
    # accuracy at high precision reaches the float model
    assert accs[-1] >= accs[0]
    assert abs(accs[-1] - float_acc) <= 0.05

    benchmark(lambda: build_physical_layout(spec, LayoutChoices(), 16,
                                            scale_bits=10))
