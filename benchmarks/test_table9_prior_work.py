"""Table 9: ZKML vs zkCNN and vCNN on CIFAR-10-scale CNNs.

The baselines are analytic models anchored to their published numbers
(see repro.runtime.baselines).  The claims to reproduce: ZKML proves a
*higher-accuracy* model (ResNet-18) faster than zkCNN proves VGG-16,
with ~5x faster verification and ~22x smaller proofs; vCNN is orders of
magnitude slower to prove but has tiny proofs.
"""

import pytest
from conftest import print_table
from paper_data import TABLE9

from repro.model import get_model
from repro.runtime import estimate_model, vcnn_estimate, zkcnn_estimate


@pytest.fixture(scope="module")
def comparison():
    zkml_resnet = estimate_model("resnet18", "kzg", scale_bits=12,
                                 include_freivalds=True)
    zkml_vgg = estimate_model("vgg16", "kzg", scale_bits=12,
                              include_freivalds=True)
    zkcnn = zkcnn_estimate(get_model("vgg16", "paper"))
    vcnn = vcnn_estimate(get_model("vgg16", "paper"))
    return zkml_resnet, zkml_vgg, zkcnn, vcnn


def test_table9_prior_work_comparison(benchmark, comparison):
    zkml_resnet, zkml_vgg, zkcnn, vcnn = comparison
    rows = [
        ("ZKML (ResNet-18)", "%.1f s" % zkml_resnet.proving_seconds,
         "%.4f s" % zkml_resnet.verification_seconds,
         "%.1f kB" % (zkml_resnet.proof_bytes / 1000),
         "paper: 52.9 s / 12 ms / 15.3 kB"),
        ("ZKML (VGG-16)", "%.1f s" % zkml_vgg.proving_seconds,
         "%.4f s" % zkml_vgg.verification_seconds,
         "%.1f kB" % (zkml_vgg.proof_bytes / 1000),
         "paper: 584.1 s / 16 ms / 12.1 kB"),
        ("zkCNN (VGG-16)", "%.1f s" % zkcnn.proving_seconds,
         "%.4f s" % zkcnn.verification_seconds,
         "%.1f kB" % (zkcnn.proof_bytes / 1000),
         "paper: 88.3 s / 59 ms / 341 kB"),
        ("vCNN (VGG-16)", "%.0f s" % vcnn.proving_seconds,
         "%.1f s" % vcnn.verification_seconds,
         "%.2f kB" % (vcnn.proof_bytes / 1000),
         "paper: ~31 h / 20 s / 0.34 kB"),
    ]
    print_table(
        "Table 9: ZKML vs prior work (CIFAR-10 CNNs)",
        ("system", "proving", "verification", "proof", "paper values"),
        rows,
    )

    # ZKML's accuracy-matched model (ResNet-18) proves faster than zkCNN
    assert zkml_resnet.proving_seconds < zkcnn.proving_seconds
    # ~5x faster verification than zkCNN
    assert zkml_resnet.verification_seconds < zkcnn.verification_seconds / 5
    # ~22x smaller proofs than zkCNN
    assert zkml_resnet.proof_bytes < zkcnn.proof_bytes / 10
    # vCNN is orders of magnitude slower to prove than everything
    assert vcnn.proving_seconds > 50 * zkcnn.proving_seconds
    assert vcnn.proving_seconds > 100 * zkml_resnet.proving_seconds
    # but vCNN has the smallest proofs (the one metric ZKML loses, §9.2)
    assert vcnn.proof_bytes < zkml_resnet.proof_bytes

    benchmark(lambda: zkcnn_estimate(get_model("vgg16", "paper")))


def test_table2_prior_work_cannot_express_modern_models(benchmark):
    """Table 2: zkCNN/vCNN support CNNs only; ZKML covers the rest."""
    from repro.runtime.baselines import UnsupportedModel

    for name in ("gpt2", "twitter", "dlrm", "diffusion"):
        with pytest.raises(UnsupportedModel):
            zkcnn_estimate(get_model(name, "paper"))
        # while ZKML optimizes them fine
        est = estimate_model(name, "kzg", scale_bits=12,
                             include_freivalds=True)
        assert est.proving_seconds > 0
    benchmark(lambda: get_model("gpt2", "paper").param_count())
