"""Table 6: end-to-end proving/verification/proof-size, KZG backend.

Full-scale models are costed with the optimizer + cost model on the
paper's modeled hardware (our substrate is a Python simulator, so
absolute seconds are modeled; see DESIGN.md).  The smallest model is
additionally *actually proven* at mini scale with the real prover, end to
end, to anchor the pipeline.
"""

import pytest
from conftest import print_table
from paper_data import TABLE6_KZG

from repro.model import get_model, model_names
from repro.runtime import estimate_model, prove_model

MODEL_ORDER = ("gpt2", "diffusion", "twitter", "dlrm", "mobilenet",
               "resnet18", "vgg16", "mnist")


@pytest.fixture(scope="module")
def kzg_estimates():
    return {name: estimate_model(name, "kzg", scale_bits=12,
                                 include_freivalds=True)
            for name in model_names()}


def test_table6_kzg_end_to_end(benchmark, kzg_estimates, mini_inputs_for):
    rows = []
    for name in MODEL_ORDER:
        est = kzg_estimates[name]
        paper_prove, paper_verify, paper_bytes = TABLE6_KZG[name]
        rows.append((
            name,
            "%.1f s" % est.proving_seconds, "%.2f s" % paper_prove,
            "%.4f s" % est.verification_seconds, "%.4f s" % paper_verify,
            est.proof_bytes, paper_bytes,
        ))
    print_table(
        "Table 6: KZG end-to-end (modeled full scale)",
        ("model", "prove (ours)", "prove (paper)", "verify (ours)",
         "verify (paper)", "proof B (ours)", "proof B (paper)"),
        rows,
    )

    times = {n: kzg_estimates[n].proving_seconds for n in MODEL_ORDER}
    # shape: the big four (gpt2/diffusion/mobilenet-scale) dominate the
    # small models by an order of magnitude, as in the paper
    assert min(times[n] for n in ("gpt2", "diffusion", "mobilenet")) > \
        10 * max(times[n] for n in ("mnist", "dlrm"))
    # verification is orders of magnitude below proving for every model
    for name in MODEL_ORDER:
        est = kzg_estimates[name]
        assert est.verification_seconds < est.proving_seconds / 100
    # proof sizes are KB-scale, like the paper's 4-38 KB
    for name in MODEL_ORDER:
        assert 2_000 < kzg_estimates[name].proof_bytes < 60_000

    # anchor: actually prove the smallest model end to end (mini scale)
    spec = get_model("mnist", "mini")
    inputs = mini_inputs_for(spec)

    def prove_once():
        return prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                           scale_bits=5)

    result = benchmark.pedantic(prove_once, rounds=1, iterations=1)
    assert result.verification_seconds() < result.proving_seconds
    print("\nreal mini-scale proof (mnist-mini, KZG): prove %.2fs, "
          "verify %.4fs, modeled %d bytes"
          % (result.proving_seconds, result.verification_seconds(),
             result.modeled_proof_bytes))
