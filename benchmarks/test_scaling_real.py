"""Real-prover scaling: the power-of-two row cliff (paper §9.3).

"Even a single extra row over a power of two would cause the proving
time to nearly double."  We demonstrate it on the actual prover: three
MLPs sized so their circuits land at consecutive k, proven for real; the
measured times should roughly double per k step, matching the FFT/MSM
scaling the cost model charges.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.model import GraphBuilder
from repro.runtime import prove_model

rng = np.random.default_rng(71)


def mlp(width, name):
    gb = GraphBuilder(name, materialize=True, seed=width)
    x = gb.input("x", (1, width))
    h = gb.fully_connected(x, width, width)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, width, 4)
    return gb.build([out])


def test_real_prover_scales_with_grid_size(benchmark):
    rows = []
    measured = {}
    for width in (16, 48, 96):
        spec = mlp(width, "scaling-%d" % width)
        result = prove_model(spec, {"x": rng.uniform(-1, 1, (1, width))},
                             num_cols=8, scale_bits=5)
        measured[width] = (result.k, result.proving_seconds)
        rows.append((width, "2^%d" % result.k,
                     "%.2f s" % result.proving_seconds))
    print_table(
        "Real-prover scaling (the power-of-two row cliff)",
        ("MLP width", "grid", "proving"),
        rows,
    )

    ks = [measured[w][0] for w in (16, 48, 96)]
    times = [measured[w][1] for w in (16, 48, 96)]
    # the circuits climb the k ladder...
    assert ks[0] < ks[2]
    # ...and each k step costs roughly 2x (allow 1.4x-3.5x per step for
    # Python noise and the constraint-count component)
    for i in range(2):
        steps = ks[i + 1] - ks[i]
        if steps == 0:
            continue
        ratio = times[i + 1] / times[i]
        assert 1.2 ** steps < ratio < 4.0 ** steps, (
            "ratio %.2f over %d k-steps" % (ratio, steps)
        )

    spec = mlp(8, "scaling-bench")
    x = rng.uniform(-1, 1, (1, 8))
    benchmark.pedantic(
        lambda: prove_model(spec, {"x": x}, num_cols=8, scale_bits=5),
        rounds=1, iterations=1,
    )


def test_batch_amortizes_tables(benchmark):
    """Proving a batch shares tables/weights: cost per inference drops
    below proving each inference alone (the audit-log shape)."""
    import time

    from repro.runtime import prove_batch

    spec = mlp(8, "batch-scaling")
    inputs = [{"x": rng.uniform(-1, 1, (1, 8))} for _ in range(4)]

    single = prove_model(spec, inputs[0], num_cols=8, scale_bits=5)
    batch = prove_batch(spec, inputs, num_cols=8, scale_bits=5)
    assert batch.verify()
    per_inference = batch.proving_seconds / batch.batch_size
    print("\nsingle proof: %.2fs; batch of 4: %.2fs (%.2fs per inference)"
          % (single.proving_seconds, batch.proving_seconds, per_inference))
    # one batch proof beats four separate proofs
    assert batch.proving_seconds < 4 * single.proving_seconds * 1.1

    benchmark.pedantic(
        lambda: prove_batch(spec, inputs[:2], num_cols=8, scale_bits=5),
        rounds=1, iterations=1,
    )
