"""Table 14: runtime-optimized vs size-optimized ZK-SNARKs (§9.4).

Users storing proofs on chain optimize for bytes instead of seconds; the
optimizer then minimizes columns.  The paper's five smallest models show
smaller proofs at the cost of 1.2-1.7x proving time.
"""

import pytest
from conftest import print_table
from paper_data import TABLE14_SIZE_OPT

from repro.model import get_model
from repro.optimizer import optimize_layout, profile_for_model

MODELS = ("mnist", "vgg16", "resnet18", "twitter", "dlrm")


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in MODELS:
        spec = get_model(name, "paper")
        hw = profile_for_model(name)
        out[name] = (
            optimize_layout(spec, hw, "kzg", scale_bits=12, objective="time"),
            optimize_layout(spec, hw, "kzg", scale_bits=12, objective="size"),
        )
    return out


def test_table14_runtime_vs_size_objective(benchmark, results):
    rows = []
    for name in MODELS:
        time_opt, size_opt = results[name]
        (paper_t, paper_tb), (paper_s, paper_sb) = TABLE14_SIZE_OPT[name]
        rows.append((
            name,
            "%.1f s / %d B" % (time_opt.proving_time, time_opt.proof_size),
            "%.1f s / %d B" % (size_opt.proving_time, size_opt.proof_size),
            "%.1f s / %d B" % (paper_t, paper_tb),
            "%.1f s / %d B" % (paper_s, paper_sb),
        ))
    print_table(
        "Table 14: runtime-optimized vs size-optimized",
        ("model", "time-opt (ours)", "size-opt (ours)",
         "time-opt (paper)", "size-opt (paper)"),
        rows,
    )

    for name in MODELS:
        time_opt, size_opt = results[name]
        # the size objective never produces a larger proof
        assert size_opt.proof_size <= time_opt.proof_size, name
        # and pays (or at least never gains) proving time
        assert size_opt.proving_time >= time_opt.proving_time * 0.999, name
    # at least a few models show the paper's real trade-off
    tradeoffs = [
        results[n][1].proving_time / results[n][0].proving_time
        for n in MODELS
    ]
    assert sum(t > 1.05 for t in tradeoffs) >= 3

    spec = get_model("dlrm", "paper")
    hw = profile_for_model("dlrm")
    benchmark(lambda: optimize_layout(spec, hw, "kzg", scale_bits=12,
                                      objective="size"))
