"""Proving-service benchmark: coalesced batches vs one-at-a-time proving.

Submits N identical-model requests through the :class:`ProvingService`
micro-batcher at several ``max_batch`` settings (1 disables coalescing)
and compares the total wall-clock against N independent ``prove_model``
calls — the one-shot CLI workflow the service replaces.  Results land in
``BENCH_serve.json``: per-run throughput, mean batch occupancy, and
speedup over the independent baseline, plus the resilience counters (a
clean run shows zeros).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py [--model dlrm] [--requests 8]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.model.zoo import get_model
from repro.perf.pkcache import GLOBAL_PK_CACHE
from repro.resilience import events
from repro.runtime.pipeline import prove_model
from repro.serve import ProvingService, ServeConfig

#: JSON schema tag for ``BENCH_serve.json``.
SCHEMA = "zkml-bench-serve/v1"


def request_inputs(spec, seed: int):
    rng = np.random.default_rng(seed)
    return {name: rng.uniform(-0.5, 0.5, shape)
            for name, shape in spec.inputs.items()}


def bench_independent(spec, all_inputs) -> dict:
    """N one-shot ``prove_model`` calls (warm pk cache: best case)."""
    GLOBAL_PK_CACHE.clear()
    prove_model(spec, all_inputs[0])  # warm keygen out of the timed region
    start = time.perf_counter()
    for inputs in all_inputs:
        result = prove_model(spec, inputs)
        result.verification_seconds()
    wall = time.perf_counter() - start
    return {
        "mode": "independent_prove_model",
        "requests": len(all_inputs),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(all_inputs) / wall, 3),
    }


def bench_service(spec, all_inputs, max_batch: int) -> dict:
    """All N requests through the service at one ``max_batch`` setting."""
    GLOBAL_PK_CACHE.clear()
    config = ServeConfig(max_batch=max_batch, max_flush_seconds=0.1)
    with ProvingService(config) as service:
        # one throwaway request warms the pk cache for the padded batch
        # shape, mirroring the warm keygen the baseline gets
        service.submit(spec, all_inputs[0]).result(timeout=300)
        start = time.perf_counter()
        futures = [service.submit(spec, inputs) for inputs in all_inputs]
        responses = [f.result(timeout=300) for f in futures]
        wall = time.perf_counter() - start
        stats = service.stats()
        status = service.status()
    if not all(r.verified for r in responses):
        raise AssertionError("a service response failed verification")
    record = {
        "mode": "service",
        "max_batch": max_batch,
        "requests": len(all_inputs),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(all_inputs) / wall, 3),
        # the warm-up batch is excluded from occupancy accounting below
        "batches": stats["batches"] - 1,
        "mean_occupancy": round(
            (stats["proofs"] - 1) / max(1, stats["batches"] - 1), 2),
        "keygen_cache_hits": sum(r.keygen_cache_hit for r in responses),
    }
    # per-request latency percentiles from the SLO tracker's total window
    # (includes the warm-up request; dominated by the measured ones)
    total = status.get("slo", {}).get("total", {})
    for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
        if total.get(key) is not None:
            record["latency_%s" % key] = total[key]
    return record


def run_bench(model: str = "dlrm", requests: int = 8,
              batch_sizes=(1, 4, 8), seed: int = 0,
              output_path: str = "BENCH_serve.json", stream=None) -> dict:
    stream = stream if stream is not None else sys.stdout
    spec = get_model(model, scale="mini")
    all_inputs = [request_inputs(spec, seed + i) for i in range(requests)]
    events.reset()

    baseline = bench_independent(spec, all_inputs)
    print("%-28s %6.2f s  %6.2f proofs/s" % (
        "%d x prove_model" % requests, baseline["wall_seconds"],
        baseline["throughput_rps"]), file=stream)

    runs = []
    for max_batch in batch_sizes:
        record = bench_service(spec, all_inputs, max_batch)
        record["speedup_vs_independent"] = round(
            baseline["wall_seconds"] / record["wall_seconds"], 2)
        runs.append(record)
        print("%-28s %6.2f s  %6.2f proofs/s  occupancy %.2f  (%.2fx)" % (
            "serve max_batch=%d" % max_batch, record["wall_seconds"],
            record["throughput_rps"], record["mean_occupancy"],
            record["speedup_vs_independent"]), file=stream)

    report = {
        "schema": SCHEMA,
        "config": {
            "model": model,
            "requests": requests,
            "seed": seed,
            "python": platform.python_version(),
        },
        "baseline": baseline,
        "runs": runs,
        # a clean benchmark performed zero retries/degradations/rebuilds
        "resilience": events.counts(),
    }
    if output_path:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % output_path, file=stream)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="dlrm")
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    report = run_bench(model=args.model, requests=args.requests,
                       seed=args.seed, output_path=args.out)
    best = max(r["speedup_vs_independent"] for r in report["runs"])
    if best <= 1.0:
        print("WARNING: coalescing never beat independent proving",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
