"""Proving-service benchmark: coalescing, and cluster throughput scaling.

Two measurements land in ``BENCH_serve.json``:

1. **Coalescing** — N identical-model requests through the
   :class:`ProvingService` micro-batcher at several ``max_batch``
   settings (1 disables coalescing), against N independent
   ``prove_model`` calls — the one-shot CLI workflow the service
   replaces.
2. **Cluster scaling** — a *mixed-model* workload (interleaved requests
   across several zoo models) through the worker-process cluster at each
   ``--workers`` count, sharing one disk-backed proving-key cache and a
   prewarm pass so every run measures proving throughput, not keygen.
   ``speedup_vs_one_worker`` is reported per worker count together with
   the machine's ``cpu_count`` — process scaling is bounded by physical
   cores, so judge the scaling curve against
   ``min(workers, cpu_count)``, not against the worker count alone.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--model dlrm] [--requests 8] [--workers 1,4] [--mixed-models dlrm,mnist]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

from repro.model.zoo import get_model
from repro.perf.pkcache import GLOBAL_PK_CACHE
from repro.resilience import events
from repro.runtime.pipeline import prove_model
from repro.serve import ProvingService, ServeConfig

#: JSON schema tag for ``BENCH_serve.json``.
SCHEMA = "zkml-bench-serve/v2"


def request_inputs(spec, seed: int):
    rng = np.random.default_rng(seed)
    return {name: rng.uniform(-0.5, 0.5, shape)
            for name, shape in spec.inputs.items()}


def bench_independent(spec, all_inputs) -> dict:
    """N one-shot ``prove_model`` calls (warm pk cache: best case)."""
    GLOBAL_PK_CACHE.clear()
    prove_model(spec, all_inputs[0])  # warm keygen out of the timed region
    start = time.perf_counter()
    for inputs in all_inputs:
        result = prove_model(spec, inputs)
        result.verification_seconds()
    wall = time.perf_counter() - start
    return {
        "mode": "independent_prove_model",
        "requests": len(all_inputs),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(all_inputs) / wall, 3),
    }


def bench_service(spec, all_inputs, max_batch: int) -> dict:
    """All N requests through the service at one ``max_batch`` setting."""
    GLOBAL_PK_CACHE.clear()
    config = ServeConfig(max_batch=max_batch, max_flush_seconds=0.1)
    with ProvingService(config) as service:
        # one throwaway request warms the pk cache for the padded batch
        # shape, mirroring the warm keygen the baseline gets
        service.submit(spec, all_inputs[0]).result(timeout=300)
        start = time.perf_counter()
        futures = [service.submit(spec, inputs) for inputs in all_inputs]
        responses = [f.result(timeout=300) for f in futures]
        wall = time.perf_counter() - start
        stats = service.stats()
        status = service.status()
    if not all(r.verified for r in responses):
        raise AssertionError("a service response failed verification")
    record = {
        "mode": "service",
        "max_batch": max_batch,
        "requests": len(all_inputs),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(all_inputs) / wall, 3),
        # the warm-up batch is excluded from occupancy accounting below
        "batches": stats["batches"] - 1,
        "mean_occupancy": round(
            (stats["proofs"] - 1) / max(1, stats["batches"] - 1), 2),
        "keygen_cache_hits": sum(r.keygen_cache_hit for r in responses),
    }
    # per-request latency percentiles from the SLO tracker's total window
    # (includes the warm-up request; dominated by the measured ones)
    total = status.get("slo", {}).get("total", {})
    for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
        if total.get(key) is not None:
            record["latency_%s" % key] = total[key]
    return record


def bench_cluster(specs, workload, workers: int, pk_cache_dir: str,
                  max_batch: int = 4) -> dict:
    """The mixed-model workload through a ``workers``-process cluster.

    ``workload`` is a list of ``(spec_index, inputs)`` pairs.  An
    untimed prewarm pass (one full-occupancy burst per model) fills the
    shared disk pk cache first, so the timed pass measures proving
    throughput at this worker count — not keygen, which the disk cache
    amortizes to once per circuit across *all* runs.
    """
    GLOBAL_PK_CACHE.clear()
    config = ServeConfig(max_batch=max_batch, max_flush_seconds=0.1,
                         cluster_workers=workers,
                         pk_cache_dir=pk_cache_dir)
    with ProvingService(config) as service:
        warm = [service.submit(spec, request_inputs(spec, 10_000 + j))
                for spec in specs for j in range(max_batch)]
        for future in warm:
            future.result(timeout=600)
        start = time.perf_counter()
        futures = [service.submit(specs[index], inputs)
                   for index, inputs in workload]
        responses = [f.result(timeout=600) for f in futures]
        wall = time.perf_counter() - start
        stats = service.stats()
        status = service.status()
    if not all(r.verified for r in responses):
        raise AssertionError("a cluster response failed verification")
    # the per-worker telemetry rollup shows how evenly the scheduler
    # spread the load (a skewed split explains a sub-linear speedup)
    per_worker = {
        str(w["id"]): {
            "batches": w["telemetry"]["batches"],
            "prove_seconds": w["telemetry"]["prove_seconds"],
        }
        for w in status["cluster"]["workers"] if "telemetry" in w
    }
    warm_batches = len(specs)  # prewarm flushes one full batch per model
    return {
        "mode": "cluster",
        "workers": workers,
        "requests": len(workload),
        "models": len(specs),
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(workload) / wall, 3),
        "batches": stats["batches"] - warm_batches,
        "mean_occupancy": round(
            (stats["proofs"] - warm_batches * max_batch)
            / max(1, stats["batches"] - warm_batches), 2),
        "keygen_cache_hits": sum(r.keygen_cache_hit for r in responses),
        "worker_restarts": stats.get("worker_restarts", 0),
        "shed_batches": stats.get("shed_batches", 0),
        "per_worker": per_worker,
    }


def mixed_workload(specs, requests: int, seed: int):
    """Interleave ``requests`` inputs round-robin across ``specs``."""
    return [(i % len(specs),
             request_inputs(specs[i % len(specs)], seed + i))
            for i in range(requests)]


def run_cluster_bench(models, requests: int, workers_counts, seed: int,
                      stream) -> dict:
    """The cluster-scaling section of the report."""
    specs = [get_model(name, scale="mini") for name in models]
    workload = mixed_workload(specs, requests, seed)
    runs = []
    with tempfile.TemporaryDirectory(prefix="zkml-bench-pk-") as pk_dir:
        for workers in workers_counts:
            record = bench_cluster(specs, workload, workers, pk_dir)
            runs.append(record)
            print("%-28s %6.2f s  %6.2f proofs/s  occupancy %.2f" % (
                "cluster workers=%d" % workers, record["wall_seconds"],
                record["throughput_rps"], record["mean_occupancy"]),
                file=stream)
    one = next((r for r in runs if r["workers"] == 1), None)
    for record in runs:
        if one is not None and one["wall_seconds"] > 0:
            record["speedup_vs_one_worker"] = round(
                one["wall_seconds"] / record["wall_seconds"], 2)
    return {
        "models": list(models),
        "requests": requests,
        "cpu_count": os.cpu_count() or 1,
        "runs": runs,
    }


def run_bench(model: str = "dlrm", requests: int = 8,
              batch_sizes=(1, 4, 8), seed: int = 0,
              workers_counts=(1, 2), mixed_models=("dlrm", "mnist"),
              output_path: str = "BENCH_serve.json", stream=None) -> dict:
    stream = stream if stream is not None else sys.stdout
    spec = get_model(model, scale="mini")
    all_inputs = [request_inputs(spec, seed + i) for i in range(requests)]
    events.reset()

    baseline = bench_independent(spec, all_inputs)
    print("%-28s %6.2f s  %6.2f proofs/s" % (
        "%d x prove_model" % requests, baseline["wall_seconds"],
        baseline["throughput_rps"]), file=stream)

    runs = []
    for max_batch in batch_sizes:
        record = bench_service(spec, all_inputs, max_batch)
        record["speedup_vs_independent"] = round(
            baseline["wall_seconds"] / record["wall_seconds"], 2)
        runs.append(record)
        print("%-28s %6.2f s  %6.2f proofs/s  occupancy %.2f  (%.2fx)" % (
            "serve max_batch=%d" % max_batch, record["wall_seconds"],
            record["throughput_rps"], record["mean_occupancy"],
            record["speedup_vs_independent"]), file=stream)

    cluster = None
    if workers_counts:
        cluster = run_cluster_bench(mixed_models, requests, workers_counts,
                                    seed, stream)

    report = {
        "schema": SCHEMA,
        "config": {
            "model": model,
            "requests": requests,
            "seed": seed,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
        },
        "baseline": baseline,
        "runs": runs,
        # a clean benchmark performed zero retries/degradations/rebuilds
        "resilience": events.counts(),
    }
    if cluster is not None:
        report["cluster"] = cluster
    if output_path:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % output_path, file=stream)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="dlrm")
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated cluster worker counts for "
                             "the mixed-model scaling runs ('' skips them)")
    parser.add_argument("--mixed-models", default="dlrm,mnist",
                        help="models interleaved in the cluster workload")
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)
    workers_counts = tuple(int(w) for w in args.workers.split(",") if w)
    mixed = tuple(m.strip() for m in args.mixed_models.split(",")
                  if m.strip())
    report = run_bench(model=args.model, requests=args.requests,
                       seed=args.seed, workers_counts=workers_counts,
                       mixed_models=mixed, output_path=args.out)
    best = max(r["speedup_vs_independent"] for r in report["runs"])
    if best <= 1.0:
        print("WARNING: coalescing never beat independent proving",
              file=sys.stderr)
        return 1
    cluster = report.get("cluster")
    if cluster:
        cores = cluster["cpu_count"]
        for run in cluster["runs"]:
            speedup = run.get("speedup_vs_one_worker")
            if speedup is None or run["workers"] == 1:
                continue
            # scaling is bounded by cores: a 4-worker run on a 1-core box
            # can only show queueing overhead, so gate against what the
            # machine can physically deliver
            effective = min(run["workers"], cores)
            if effective >= 4 and speedup < 2.5:
                print("WARNING: %d workers on %d cores scaled only "
                      "%.2fx (expected >= 2.5x)"
                      % (run["workers"], cores, speedup), file=sys.stderr)
                return 1
            if effective == 1 and speedup < 0.5:
                print("WARNING: cluster dispatch overhead ate >2x "
                      "throughput on a single core", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
