"""Table 12: optimizer runtime with and without logical-layout pruning.

Pruning keeps one implementation per layer family per configuration; the
non-pruned search also evaluates every single-layer deviation.  The paper
finds pruning cuts optimizer runtime up to 2.8x while finding the *same*
final plan in all cases.
"""

import time

import pytest
from conftest import print_table
from paper_data import TABLE12_PRUNING

from repro.model import get_model
from repro.optimizer import optimize_layout, profile_for_model

MODELS = ("mnist", "resnet18", "gpt2")


def _run(name, prune):
    spec = get_model(name, "paper")
    hw = profile_for_model(name)
    start = time.perf_counter()
    result = optimize_layout(spec, hw, "kzg", scale_bits=12, prune=prune)
    return result, time.perf_counter() - start


def test_table12_pruning_runtime(benchmark):
    rows = []
    for name in MODELS:
        pruned, t_pruned = _run(name, True)
        full, t_full = _run(name, False)
        paper_pruned, paper_full = TABLE12_PRUNING[name]
        rows.append((
            name,
            "%.3f s" % t_pruned, "%.3f s" % t_full,
            "%.1fx" % (t_full / t_pruned),
            "%.1fx" % (paper_full / paper_pruned),
            "%d vs %d layouts" % (len(pruned.candidates),
                                  len(full.candidates)),
        ))
        # the pruned search finds the same plan (paper: "same end
        # configuration in all cases")
        assert pruned.layout.num_cols == full.layout.num_cols, name
        assert pruned.layout.k == full.layout.k, name
        assert pruned.layout.plan.base == full.layout.plan.base, name
        assert full.layout.plan.is_uniform, name
        # and the non-pruned search does strictly more work
        assert len(full.candidates) > len(pruned.candidates), name
    print_table(
        "Table 12: optimizer runtime, pruned vs non-pruned",
        ("model", "pruned (ours)", "non-pruned (ours)", "speedup (ours)",
         "speedup (paper)", "search space"),
        rows,
    )

    spec = get_model("mnist", "paper")
    hw = profile_for_model("mnist")
    benchmark(lambda: optimize_layout(spec, hw, "kzg", scale_bits=12,
                                      prune=False))
