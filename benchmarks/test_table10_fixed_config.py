"""Table 10: optimizer vs a fixed 40-column configuration.

The paper pins 40 advice columns (the width GPT-2 needs to fit memory)
for every model and shows the optimizer beats it by 23%-131% — largely
because a fixed width can push the row count just past a power of two.
GPT-2 is excluded, exactly as in the paper (40 columns *is* its config).
"""

import pytest
from conftest import print_table
from paper_data import TABLE10_FIXED_CONFIG

from repro.model import get_model
from repro.optimizer import (
    fixed_configuration_cost,
    optimize_layout,
    profile_for_model,
)

MODELS = ("diffusion", "twitter", "dlrm", "mobilenet", "resnet18", "vgg16",
          "mnist")
FIXED_COLUMNS = 40


@pytest.fixture(scope="module")
def comparisons():
    out = {}
    for name in MODELS:
        spec = get_model(name, "paper")
        hw = profile_for_model(name)
        optimized = optimize_layout(spec, hw, "kzg", scale_bits=12)
        fixed = fixed_configuration_cost(spec, hw, FIXED_COLUMNS,
                                         scale_bits=12)
        out[name] = (optimized, fixed)
    return out


def test_table10_optimizer_vs_fixed_configuration(benchmark, comparisons):
    rows = []
    improvements = []
    for name in MODELS:
        optimized, fixed = comparisons[name]
        ours = (fixed.cost.total / optimized.proving_time - 1) * 100
        improvements.append(ours)
        paper_opt, paper_fixed, paper_imp = TABLE10_FIXED_CONFIG[name]
        rows.append((
            name,
            "%.1f s" % optimized.proving_time,
            "%.1f s" % fixed.cost.total,
            "%.0f%%" % ours,
            "%d%%" % paper_imp,
        ))
    print_table(
        "Table 10: ZKML optimizer vs fixed 40-column configuration",
        ("model", "optimized", "fixed config", "improvement (ours)",
         "improvement (paper)"),
        rows,
    )

    # the optimizer never loses to the fixed configuration
    assert all(imp >= -1e-9 for imp in improvements)
    # and wins materially (paper: 23%..131%) on most models
    assert sum(imp > 20 for imp in improvements) >= 4
    assert max(improvements) > 50

    spec = get_model("mnist", "paper")
    hw = profile_for_model("mnist")
    benchmark(lambda: optimize_layout(spec, hw, "kzg", scale_bits=12))
