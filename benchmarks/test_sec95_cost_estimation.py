"""§9.5 "Cost Estimation Accuracy".

For the MNIST model, the paper benchmarks every physical layout for real
and checks that (a) the cost model's top-ranked layout is truly the
fastest and (b) Kendall's rank correlation between estimates and true
proving times is high (0.89 KZG / 0.88 IPA).

We do the genuine experiment at mini scale: calibrate the cost model to
*this machine's Python prover* with benchmark_operations(), estimate
every candidate column count, actually prove each one, and correlate.
"""

import time

import pytest
from conftest import print_table
from paper_data import SEC95_KENDALL
from scipy.stats import kendalltau

from repro.compiler import build_physical_layout
from repro.layers.base import LayoutChoices
from repro.model import get_model
from repro.optimizer import benchmark_operations, estimate_cost
from repro.runtime import prove_model

COLUMN_CANDIDATES = (7, 8, 10, 14)  # wide softmax division needs >= 7
SCALE_BITS = 5


@pytest.fixture(scope="module")
def local_profile():
    return benchmark_operations(ks=(8, 9, 10, 11, 12))


def run_backend(scheme, profile, mini_inputs_for):
    spec = get_model("mnist", "mini")
    inputs = mini_inputs_for(spec)
    estimates, measured = [], []
    for num_cols in COLUMN_CANDIDATES:
        layout = build_physical_layout(spec, LayoutChoices(), num_cols,
                                       scale_bits=SCALE_BITS)
        estimates.append(estimate_cost(layout, profile, scheme).total)
        result = prove_model(spec, inputs, scheme_name=scheme,
                             num_cols=num_cols, scale_bits=SCALE_BITS)
        measured.append(result.proving_seconds)
    return estimates, measured


def test_sec95_cost_estimation_accuracy(benchmark, local_profile,
                                        mini_inputs_for):
    rows = []
    for scheme in ("kzg", "ipa"):
        estimates, measured = run_backend(scheme, local_profile,
                                          mini_inputs_for)
        tau, _ = kendalltau(estimates, measured)
        best_est = estimates.index(min(estimates))
        best_real = measured.index(min(measured))
        rows.append((
            scheme,
            ", ".join("%.2f" % e for e in estimates),
            ", ".join("%.2f" % m for m in measured),
            "%.2f" % tau,
            "%.2f" % SEC95_KENDALL[scheme],
            "col=%d vs col=%d" % (COLUMN_CANDIDATES[best_est],
                                  COLUMN_CANDIDATES[best_real]),
        ))

        # the top-ranked layout is the truly fastest (or within one)
        assert abs(best_est - best_real) <= 1, (
            "%s: ranked %d, real %d" % (scheme, best_est, best_real)
        )
        # high rank correlation, like the paper's 0.88-0.89
        assert tau >= 0.5, "%s kendall tau %.2f" % (scheme, tau)

    print_table(
        "Sec 9.5: cost-estimate vs real proving time (mnist-mini)",
        ("backend", "estimates (s)", "measured (s)", "kendall tau (ours)",
         "kendall tau (paper)", "top-ranked vs fastest"),
        rows,
    )

    spec = get_model("mnist", "mini")
    layout = build_physical_layout(spec, LayoutChoices(), 10,
                                   scale_bits=SCALE_BITS)
    benchmark(lambda: estimate_cost(layout, local_profile, "kzg").total)
