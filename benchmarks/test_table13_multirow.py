"""Table 13: single-row vs multi-row constraints (§9.4).

ZKML restricts gadgets to single-row constraints to stay compatible with
newer proving systems; the paper shows this costs nothing (multi-row is
up to 2.2% *slower*).  We build the same fixed workload — a mix of adds,
maxes, and dot products at 10 columns — swap one gadget at a time for its
multi-row variant, and measure real proving time with the Python prover.
"""

import time

import pytest
from conftest import print_table
from paper_data import TABLE13_MULTIROW

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.gadgets import (
    AddGadget,
    CircuitBuilder,
    DotProdGadget,
    MaxGadget,
    MultiRowAddGadget,
    MultiRowDotGadget,
    MultiRowMaxGadget,
)
from repro.halo2 import create_proof, keygen, verify_proof
from repro.tensor import Entry

OPS = 40  # ops per gadget type; k stays small enough to prove quickly


def build_circuit(add_cls, max_cls, dot_cls):
    b = CircuitBuilder(k=9, num_cols=10, scale_bits=4, lookup_bits=8)
    add = b.gadget(add_cls)
    mx = b.gadget(max_cls)
    dot = b.gadget(dot_cls)
    for i in range(OPS):
        (s,) = add.assign_row([(Entry(i), Entry(2 * i % 50))])
        (m,) = mx.assign_row([(s, Entry(40))])
        dot.assign_row([([s, m], [Entry(2), Entry(3)])])
    return b


def prove_circuit(builder):
    scheme = scheme_by_name("kzg", GOLDILOCKS)
    pk, vk = keygen(builder.cs, builder.asg, scheme)
    start = time.perf_counter()
    proof = create_proof(pk, builder.asg, scheme)
    elapsed = time.perf_counter() - start
    assert verify_proof(vk, proof, builder.asg.instance_values(), scheme)
    return elapsed


CONDITIONS = {
    "single-row": (AddGadget, MaxGadget, DotProdGadget),
    "multi-row adder": (MultiRowAddGadget, MaxGadget, DotProdGadget),
    "multi-row max": (AddGadget, MultiRowMaxGadget, DotProdGadget),
    "multi-row dot": (AddGadget, MaxGadget, MultiRowDotGadget),
}


def test_table13_single_vs_multi_row(benchmark):
    times = {}
    for label, (add_cls, max_cls, dot_cls) in CONDITIONS.items():
        builder = build_circuit(add_cls, max_cls, dot_cls)
        times[label] = prove_circuit(builder)

    rows = [
        (label, "%.2f s" % times[label], "%.2f s" % TABLE13_MULTIROW[label],
         "%+.1f%%" % ((times[label] / times["single-row"] - 1) * 100))
        for label in CONDITIONS
    ]
    print_table(
        "Table 13: single-row vs multi-row gadgets (real proofs, 10 cols)",
        ("condition", "proving (ours)", "proving (paper)",
         "overhead vs single-row"),
        rows,
    )

    # the paper's claim: multi-row constraints do not meaningfully change
    # proving time (they measured at most +2.2%).  Our Python prover is
    # noisier and our multi-row max also declares fewer per-slot lookup
    # arguments, so we allow a wider band around parity
    for label in ("multi-row adder", "multi-row max", "multi-row dot"):
        ratio = times[label] / times["single-row"]
        assert 0.65 < ratio < 1.35, "%s ratio %.2f" % (label, ratio)

    benchmark.pedantic(
        lambda: prove_circuit(build_circuit(AddGadget, MaxGadget,
                                            DotProdGadget)),
        rounds=1, iterations=1,
    )
