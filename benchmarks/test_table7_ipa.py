"""Table 7: end-to-end numbers for the IPA backend, and the KZG-vs-IPA
shape claims of §9.2: IPA proofs are (usually) larger, IPA verification
is much slower, proving is comparable."""

import pytest
from conftest import print_table
from paper_data import TABLE6_KZG, TABLE7_IPA

from repro.model import get_model, model_names
from repro.runtime import estimate_model, prove_model

MODEL_ORDER = ("gpt2", "diffusion", "twitter", "dlrm", "mobilenet",
               "resnet18", "vgg16", "mnist")


@pytest.fixture(scope="module")
def estimates():
    return {
        scheme: {
            name: estimate_model(name, scheme, scale_bits=12,
                                 include_freivalds=True)
            for name in model_names()
        }
        for scheme in ("kzg", "ipa")
    }


def test_table7_ipa_end_to_end(benchmark, estimates, mini_inputs_for):
    rows = []
    for name in MODEL_ORDER:
        est = estimates["ipa"][name]
        paper_prove, paper_verify, paper_bytes = TABLE7_IPA[name]
        rows.append((
            name,
            "%.1f s" % est.proving_seconds, "%.2f s" % paper_prove,
            "%.4f s" % est.verification_seconds, "%.4f s" % paper_verify,
            est.proof_bytes, paper_bytes,
        ))
    print_table(
        "Table 7: IPA end-to-end (modeled full scale)",
        ("model", "prove (ours)", "prove (paper)", "verify (ours)",
         "verify (paper)", "proof B (ours)", "proof B (paper)"),
        rows,
    )

    for name in MODEL_ORDER:
        kzg = estimates["kzg"][name]
        ipa = estimates["ipa"][name]
        # IPA verification is much slower than KZG (§9.2); the gap widens
        # with circuit size because IPA's verifier is O(n) group ops
        assert ipa.verification_seconds > 3 * kzg.verification_seconds, name
        # IPA openings grow with k, so proofs are at least as large
        assert ipa.proof_bytes >= kzg.proof_bytes, name
        # proving times are comparable (within 25%)
        ratio = ipa.proving_seconds / kzg.proving_seconds
        assert 0.8 < ratio < 1.25, "%s proving ratio %.2f" % (name, ratio)

    # real mini-scale IPA proof end to end
    spec = get_model("dlrm", "mini")
    inputs = mini_inputs_for(spec)

    def prove_once():
        return prove_model(spec, inputs, scheme_name="ipa", num_cols=10,
                           scale_bits=5)

    result = benchmark.pedantic(prove_once, rounds=1, iterations=1)
    assert result.verification_seconds() < result.proving_seconds
