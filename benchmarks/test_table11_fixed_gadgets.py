"""Table 11: ZKML vs a fixed gadget set (no alternative implementations).

The ablation removes the extra gadget implementations so every layer has
one baseline layout (dot-product-with-Sum linear layers, dot-product
arithmetic) while keeping the layout optimizer.  The paper reports
slowdowns of 148% (MNIST) up to 2399% (DLRM) — the 24x headline.
"""

import pytest
from conftest import print_table
from paper_data import TABLE11_FIXED_GADGETS

from repro.model import get_model
from repro.optimizer import optimize_layout, profile_for_model

MODELS = ("mnist", "dlrm", "resnet18")


@pytest.fixture(scope="module")
def comparisons():
    out = {}
    for name in MODELS:
        spec = get_model(name, "paper")
        hw = profile_for_model(name)
        best = optimize_layout(spec, hw, "kzg", scale_bits=12)
        restricted = optimize_layout(spec, hw, "kzg", scale_bits=12,
                                     restrict_gadgets=True)
        out[name] = (best, restricted)
    return out


def test_table11_fixed_gadget_ablation(benchmark, comparisons):
    rows = []
    slowdowns = []
    for name in MODELS:
        best, restricted = comparisons[name]
        ours = (restricted.proving_time / best.proving_time - 1) * 100
        slowdowns.append(ours)
        paper_best, paper_restricted, paper_imp = TABLE11_FIXED_GADGETS[name]
        rows.append((
            name,
            "%.1f s" % best.proving_time,
            "%.1f s" % restricted.proving_time,
            "%.0f%%" % ours,
            "%d%%" % paper_imp,
        ))
    print_table(
        "Table 11: ZKML vs fixed gadget set",
        ("model", "all gadgets", "fixed gadgets", "slowdown (ours)",
         "slowdown (paper)"),
        rows,
    )

    # removing the gadget alternatives never helps
    assert all(s >= 0 for s in slowdowns)
    # conv-heavy models blow up by 1-2 orders of magnitude (paper: up to
    # 24x); DLRM's slowdown is small in our gadget taxonomy because its
    # cost is dot-product rows either way — see EXPERIMENTS.md
    assert sum(s > 100 for s in slowdowns) >= 2
    assert max(slowdowns) > 400

    spec = get_model("mnist", "paper")
    hw = profile_for_model("mnist")
    benchmark(lambda: optimize_layout(spec, hw, "kzg", scale_bits=12,
                                      restrict_gadgets=True))
