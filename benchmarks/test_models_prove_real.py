"""Real end-to-end proofs of every zoo model at mini scale.

This is the pipeline anchor behind the modeled Tables 6/7: each of the
paper's eight architectures — conv nets, the recommender models, the
transformer, the diffusion UNet — is synthesized, keygen'd, proven, and
verified with the actual Python prover.
"""

import pytest
from conftest import print_table

from repro.model import get_model, model_names
from repro.runtime import prove_model

#: models proven for real in this bench (all eight; smallest grids).
MODELS = ("mnist", "resnet18", "vgg16", "mobilenet", "dlrm", "twitter",
          "gpt2", "diffusion")


def test_all_zoo_minis_prove_for_real(benchmark, mini_inputs_for):
    rows = []
    for name in MODELS:
        spec = get_model(name, "mini")
        result = prove_model(spec, mini_inputs_for(spec), scheme_name="kzg",
                             num_cols=10, scale_bits=5)
        verify_s = result.verification_seconds()  # raises if invalid
        rows.append((
            name,
            "2^%d x %d" % (result.k, result.num_cols),
            "%.2f s" % result.keygen_seconds,
            "%.2f s" % result.proving_seconds,
            "%.3f s" % verify_s,
            result.modeled_proof_bytes,
        ))
        assert verify_s < result.proving_seconds
    print_table(
        "Real proofs: all eight architectures at mini scale (KZG)",
        ("model", "grid", "keygen", "prove", "verify", "modeled proof B"),
        rows,
    )

    spec = get_model("dlrm", "mini")
    inputs = mini_inputs_for(spec)
    benchmark.pedantic(
        lambda: prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                            scale_bits=5),
        rounds=1, iterations=1,
    )
