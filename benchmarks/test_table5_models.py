"""Table 5: models in the evaluation — parameters and flops.

Regenerates the model inventory from the zoo's paper-scale specs and
compares against the paper's reported counts.
"""

from conftest import print_table
from paper_data import TABLE6_KZG

from repro.model import PAPER_TABLE5, get_model, model_names


def test_table5_model_statistics(benchmark):
    specs = {name: get_model(name, "paper") for name in model_names()}

    rows = []
    for name in ("gpt2", "diffusion", "twitter", "dlrm", "mobilenet",
                 "resnet18", "vgg16", "mnist"):
        spec = specs[name]
        paper_params, paper_flops = PAPER_TABLE5[name]
        rows.append((
            name,
            "{:,}".format(spec.param_count()),
            "{:,}".format(paper_params),
            "{:,}".format(spec.flops()),
            "{:,}".format(paper_flops),
        ))
    print_table(
        "Table 5: model inventory",
        ("model", "params (ours)", "params (paper)", "flops (ours)",
         "flops (paper)"),
        rows,
    )

    # every model within 25% of the paper's parameter count
    for name, spec in specs.items():
        ratio = spec.param_count() / PAPER_TABLE5[name][0]
        assert 0.75 <= ratio <= 1.25, "%s params off by %.2fx" % (name, ratio)

    # flops ordering: diffusion heaviest, mnist lightest
    flops = {name: spec.flops() for name, spec in specs.items()}
    assert max(flops, key=flops.get) == "diffusion"
    assert min(flops, key=flops.get) == "mnist"

    benchmark(lambda: get_model("resnet18", "paper").flops())
