"""§9.4 case studies.

1. GPT-2's optimal configuration depends on the backend and hardware
   (the paper found 2^25 x 13 for KZG vs 2^24 x 25 for IPA).
2. Optimizing for proof size instead of proving time pins the column
   count to the gadget minimum (Table 14's mechanism).
"""

import pytest
from conftest import print_table

from repro.model import get_model
from repro.optimizer import (
    R6I_8XLARGE,
    R6I_32XLARGE,
    optimize_layout,
)


def test_sec94_case_study_gpt2_configs(benchmark):
    spec = get_model("gpt2", "paper")
    rows = []
    results = {}
    for scheme in ("kzg", "ipa"):
        for hw in (R6I_8XLARGE, R6I_32XLARGE):
            res = optimize_layout(spec, hw, scheme, scale_bits=12)
            results[(scheme, hw.name)] = res
            rows.append((
                scheme, hw.name,
                "%d cols x 2^%d" % (res.layout.num_cols, res.layout.k),
                "%.1f s" % res.proving_time,
            ))
    print_table(
        "Sec 9.4 case study: GPT-2 optimal configuration per backend/hardware",
        ("backend", "hardware", "layout", "est. proving"),
        rows,
    )

    # the paper's observation: "the optimal configuration depends on the
    # hardware and backend" — at least the proving times must differ
    # across hardware, and every config is feasible under 2^28
    for key, res in results.items():
        assert res.layout.k <= 28
    assert (results[("kzg", "r6i.8xlarge")].proving_time
            > results[("kzg", "r6i.32xlarge")].proving_time)

    benchmark(lambda: optimize_layout(spec, R6I_32XLARGE, "kzg",
                                      scale_bits=12))


def test_sec94_case_study_size_objective_minimizes_columns(benchmark):
    spec = get_model("gpt2", "paper")
    hw = R6I_32XLARGE
    time_opt = optimize_layout(spec, hw, "kzg", scale_bits=12,
                               objective="time")
    size_opt = optimize_layout(spec, hw, "kzg", scale_bits=12,
                               objective="size")
    print("\nGPT-2 KZG: time-opt %d cols (%d B), size-opt %d cols (%d B)"
          % (time_opt.layout.num_cols, time_opt.proof_size,
             size_opt.layout.num_cols, size_opt.proof_size))
    # minimizing size means minimizing columns (paper §9.4)
    assert size_opt.layout.num_cols < time_opt.layout.num_cols
    assert size_opt.proof_size < time_opt.proof_size
    assert size_opt.proving_time >= time_opt.proving_time

    benchmark(lambda: optimize_layout(spec, hw, "kzg", scale_bits=12,
                                      objective="size"))
