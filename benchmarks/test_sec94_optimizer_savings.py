"""§9.4 "Time savings": optimizer vs exhaustive proof benchmarking.

The paper compares the optimizer's runtime to the time it would take to
actually *prove* every candidate configuration: 575x/491x faster for
MNIST (KZG/IPA) and an estimated ~5900x for GPT-2.  We measure our
optimizer's wall-clock and sum the modeled proving time over every
candidate it evaluated — the same exhaustive-benchmarking estimate the
paper used for GPT-2.
"""

import time

import pytest
from conftest import print_table
from paper_data import SEC94_SPEEDUPS

from repro.model import get_model
from repro.optimizer import optimize_layout, profile_for_model


def measure(name, scheme):
    spec = get_model(name, "paper")
    hw = profile_for_model(name)
    start = time.perf_counter()
    result = optimize_layout(spec, hw, scheme, scale_bits=12)
    optimizer_seconds = time.perf_counter() - start
    exhaustive_seconds = sum(c.cost.total for c in result.candidates)
    return optimizer_seconds, exhaustive_seconds, len(result.candidates)


def test_sec94_optimizer_vs_exhaustive(benchmark):
    rows = []
    speedups = {}
    for name, scheme, paper_key in (
        ("mnist", "kzg", "mnist-kzg"),
        ("mnist", "ipa", "mnist-ipa"),
        ("gpt2", "kzg", "gpt2-kzg"),
    ):
        opt_s, exhaustive_s, n = measure(name, scheme)
        speedup = exhaustive_s / opt_s
        speedups[paper_key] = speedup
        rows.append((
            "%s (%s)" % (name, scheme),
            "%.2f s" % opt_s,
            "%.0f s" % exhaustive_s,
            "%.0fx" % speedup,
            "%dx" % SEC94_SPEEDUPS[paper_key],
            n,
        ))
    print_table(
        "Sec 9.4: optimizer runtime vs exhaustive benchmarking",
        ("model", "optimizer", "exhaustive (est.)", "speedup (ours)",
         "speedup (paper)", "candidates"),
        rows,
    )

    # the optimizer is orders of magnitude faster than proving every
    # candidate, and the savings grow with model size (paper's key claim)
    assert all(s > 100 for s in speedups.values())
    assert speedups["gpt2-kzg"] > speedups["mnist-kzg"]

    spec = get_model("mnist", "paper")
    hw = profile_for_model("mnist")
    benchmark(lambda: optimize_layout(spec, hw, "kzg", scale_bits=12))
