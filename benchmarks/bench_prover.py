"""Standalone prover benchmark (thin wrapper over ``repro.perf.bench``).

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_prover.py [--jobs N] [--models ...]

Proves the default mini zoo trio, prints the per-phase breakdown, and
writes ``BENCH_prover.json`` plus a Chrome trace and a Prometheus
metrics file next to it.  Each model is additionally re-proved with
worker processes; the script exits non-zero if the parallel proof bytes
diverge from the serial ones, or if the run recorded any resilience
event (retry / degradation / rebuild) — a clean benchmark must not be
measuring a fallback path.  Same engine as ``zkml bench``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.perf.bench import DEFAULT_MODELS, run_bench


def _sibling(path: str, suffix: str) -> str:
    root, _ = os.path.splitext(path)
    return root + suffix


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=list(DEFAULT_MODELS))
    parser.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_prover.json")
    parser.add_argument("--trace", default=None,
                        help="Chrome trace output (default: <out>.trace.json)")
    parser.add_argument("--metrics", default=None,
                        help="metrics output (default: <out>.metrics.prom)")
    parser.add_argument("--no-check-parallel", action="store_true",
                        help="skip the serial-vs-parallel proof byte check")
    args = parser.parse_args(argv)
    out = args.out or None
    trace_path = args.trace or (out and _sibling(out, ".trace.json"))
    metrics_path = args.metrics or (out and _sibling(out, ".metrics.prom"))
    report = run_bench(
        models=args.models,
        scheme_name=args.backend,
        jobs=args.jobs,
        seed=args.seed,
        output_path=out,
        trace_path=trace_path,
        metrics_path=metrics_path,
        check_parallel=not args.no_check_parallel,
    )
    if report.get("parallel_proofs_identical") is False:
        print("FAIL: serial and parallel proof bytes diverge",
              file=sys.stderr)
        return 1
    resilience = report.get("resilience", {})
    recoveries = sum(resilience.get(k, 0)
                     for k in ("degraded", "retries", "recovered"))
    if recoveries:
        # a clean benchmark run must not silently recover from anything —
        # a degradation here means the numbers measured a fallback path
        print("FAIL: %d resilience event(s) during a clean run: %s"
              % (recoveries, resilience), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
