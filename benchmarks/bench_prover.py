"""Standalone prover benchmark (thin wrapper over ``repro.perf.bench``).

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_prover.py [--jobs N] [--models ...]

Proves the default mini zoo trio, prints the per-phase breakdown, and
writes ``BENCH_prover.json``.  Same engine as ``zkml bench``.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.bench import DEFAULT_MODELS, run_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=list(DEFAULT_MODELS))
    parser.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_prover.json")
    args = parser.parse_args(argv)
    run_bench(
        models=args.models,
        scheme_name=args.backend,
        jobs=args.jobs,
        seed=args.seed,
        output_path=args.out or None,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
