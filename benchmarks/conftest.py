"""Shared benchmark fixtures and the paper-vs-measured table printer."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))


def print_table(title, headers, rows):
    """Print an aligned paper-vs-measured table (shown with pytest -s)."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print("\n== %s ==" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2024)


@pytest.fixture(scope="session")
def mini_inputs_for():
    def _make(spec, seed=0):
        local = np.random.default_rng(seed)
        return {
            name: local.uniform(-0.5, 0.5, shape)
            for name, shape in spec.inputs.items()
        }

    return _make
