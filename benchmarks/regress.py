"""Benchmark regression gate (thin wrapper over ``repro.perf.regress``).

Run from the repo root:

    PYTHONPATH=src python benchmarks/regress.py BASELINE.json CURRENT.json \
        [--threshold time=4.0] [--threshold dlrm.prove_seconds=0.5] \
        [--json report.json] [--verbose]

Diffs CURRENT against BASELINE metric by metric.  Deterministic metrics
(rows, columns, modeled proof bytes, observed operation counts) are
gated exactly — any increase fails; ``*_seconds`` metrics get a relative
threshold (default +50%, override with ``--threshold time=X`` or
per-metric keys).  Higher-is-better serve metrics (``throughput_rps``,
``speedup_vs_independent``, ``mean_occupancy``, ``keygen_cache_hits``)
gate on *decreases* with the same relative slack.  Exits 1 when anything
regresses or a baseline metric vanished; 0 otherwise.  Same engine as
``zkml bench --compare``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.perf.regress import compare_files, parse_thresholds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced report JSON")
    parser.add_argument("--threshold", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="relative threshold override; 'time=X' covers "
                             "all *_seconds metrics")
    parser.add_argument("--json", default=None,
                        help="also write the diff report as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="print every metric, not just changes")
    args = parser.parse_args(argv)

    report = compare_files(args.baseline, args.current,
                           thresholds=parse_thresholds(args.threshold))
    print(report.render(verbose=args.verbose))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
