"""Ablation: Freivalds' randomized matmul verification (paper §6.1).

The paper describes accelerating linear layers with Freivalds' algorithm
(verify C = AB against a random vector in O(n^2)).  This bench shows why
it matters: the optimizer's best layouts with and without the option,
and the fact that our paper-scale diffusion model does not fit the 2^28
trusted setup at all without it.
"""

import pytest
from conftest import print_table

from repro.compiler import LayoutInfeasible
from repro.model import get_model
from repro.optimizer import optimize_layout, profile_for_model

MODELS = ("gpt2", "vgg16", "mobilenet", "diffusion")


def test_ablation_freivalds(benchmark):
    rows = []
    gains = {}
    for name in MODELS:
        spec = get_model(name, "paper")
        hw = profile_for_model(name)
        with_f = optimize_layout(spec, hw, "kzg", scale_bits=12,
                                 include_freivalds=True)
        try:
            without = optimize_layout(spec, hw, "kzg", scale_bits=12,
                                      include_freivalds=False)
            without_s = "%.1f s (2^%d)" % (without.proving_time,
                                           without.layout.k)
            gains[name] = without.proving_time / with_f.proving_time
        except LayoutInfeasible:
            without_s = "INFEASIBLE (> 2^28 rows)"
            gains[name] = float("inf")
        rows.append((
            name,
            "%.1f s (2^%d)" % (with_f.proving_time, with_f.layout.k),
            without_s,
            "%.1fx" % gains[name] if gains[name] != float("inf") else "inf",
        ))
    print_table(
        "Ablation: Freivalds matmul verification on/off",
        ("model", "with freivalds", "without", "speedup"),
        rows,
    )

    # Freivalds never hurts, meaningfully helps matmul-heavy models, and
    # is the only way diffusion fits the trusted setup at all
    assert all(g >= 1.0 for g in gains.values())
    assert gains["gpt2"] > 1.5
    assert gains["diffusion"] == float("inf")

    spec = get_model("gpt2", "paper")
    hw = profile_for_model("gpt2")
    benchmark(lambda: optimize_layout(spec, hw, "kzg", scale_bits=12,
                                      include_freivalds=True))
