"""Verification-side benchmark: envelope verify throughput + reject cost.

Proves one mini model, publishes its verifying key, then drives the
:class:`~repro.serve.verify_service.VerifyService` the way
``zkml verify-serve`` does:

- ``single``  — one envelope per request, N requests (the no-batching
  baseline: every request pays its own registry fetch);
- ``batch``   — the same envelopes in max-size batches (registry fetch
  and key integrity check amortized per distinct vk hash);
- ``reject_checksum`` / ``reject_truncated`` — hostile envelopes: how
  fast the hardened decoder sheds garbage *without* field arithmetic
  (rejection throughput is a DoS-resistance number, so a regression
  here is security-relevant);
- ``decode``  — decoder-only throughput, no verification.

Throughput metrics are named ``*_throughput_rps`` so the shared
regression gate (``benchmarks/regress.py``) treats *decreases* as
regressions with the relative ``time`` slack; counts stay exact.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_verify.py [--model dlrm]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time

import numpy as np

from repro.envelope import decode_envelope
from repro.model.zoo import get_model
from repro.registry import VKRegistry
from repro.resilience import events
from repro.runtime.pipeline import prove_model
from repro.serve import VerifyConfig, VerifyService

#: JSON schema tag for ``BENCH_verify.json``.
SCHEMA = "zkml-bench-verify/v1"


def build_envelope(model: str, seed: int):
    spec = get_model(model, scale="mini")
    rng = np.random.default_rng(seed)
    inputs = {name: rng.uniform(-0.5, 0.5, shape)
              for name, shape in spec.inputs.items()}
    result = prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                         scale_bits=5)
    return result, result.envelope_bytes()


def _tampered(encoded: bytes) -> bytes:
    bad = bytearray(encoded)
    bad[-1] ^= 0xFF
    return bytes(bad)


def bench_requests(service, batches, mode: str) -> dict:
    """Time a list of verify requests; throughput is envelopes/second."""
    envelopes = sum(len(b) for b in batches)
    start = time.perf_counter()
    accepted = rejected = 0
    for batch in batches:
        report = service.verify_batch(batch)
        accepted += report["accepted"]
        rejected += report["rejected"]
    wall = time.perf_counter() - start
    return {
        "mode": mode,
        "requests": len(batches),
        "envelopes": envelopes,
        "accepted": accepted,
        "rejected": rejected,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(envelopes / wall, 3),
    }


def bench_decode(encoded: bytes, iterations: int) -> dict:
    start = time.perf_counter()
    for _ in range(iterations):
        decode_envelope(encoded)
    wall = time.perf_counter() - start
    return {
        "mode": "decode",
        "envelopes": iterations,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(iterations / wall, 3),
    }


def run_bench(model: str = "dlrm", requests: int = 12, max_batch: int = 8,
              rejects: int = 200, seed: int = 0,
              output_path: str = "BENCH_verify.json", stream=None) -> dict:
    stream = stream if stream is not None else sys.stdout
    result, encoded = build_envelope(model, seed)
    events.reset()

    with tempfile.TemporaryDirectory(prefix="zkml-bench-verify-") as root:
        registry = VKRegistry(root)
        env = result.envelope()
        registry.publish(result.vk, env.model, env.config_digest)
        service = VerifyService(registry=registry,
                                config=VerifyConfig(max_batch=max_batch,
                                                    telemetry=False))

        service.verify_batch([encoded])  # warm the registry read path

        runs = []
        single = bench_requests(service, [[encoded]] * requests, "single")
        runs.append(single)
        batched = bench_requests(
            service,
            [[encoded] * max_batch
             for _ in range(max(1, requests // max_batch))],
            "batch%d" % max_batch)
        batched["speedup_vs_independent"] = round(
            batched["throughput_rps"] / single["throughput_rps"], 2)
        runs.append(batched)
        runs.append(bench_requests(
            service, [[_tampered(encoded)]] * rejects, "reject_checksum"))
        runs.append(bench_requests(
            service, [[encoded[:100]]] * rejects, "reject_truncated"))
        runs.append(bench_decode(encoded, rejects))

        if single["accepted"] != single["envelopes"] \
                or batched["accepted"] != batched["envelopes"]:
            raise AssertionError("a known-good envelope failed to verify")
        if any(r["accepted"] for r in runs if r["mode"].startswith("reject")):
            raise AssertionError("a hostile envelope was accepted")

        for record in runs:
            print("%-18s %8d env  %7.3f s  %10.1f env/s" % (
                record["mode"], record["envelopes"],
                record["wall_seconds"], record["throughput_rps"]),
                file=stream)

        report = {
            "schema": SCHEMA,
            "config": {
                "model": model,
                "requests": requests,
                "max_batch": max_batch,
                "rejects": rejects,
                "seed": seed,
                "python": platform.python_version(),
            },
            "envelope": {
                "bytes": len(encoded),
                "public_inputs": env.num_public_inputs(),
                "proof_bytes": len(env.proof_bytes),
            },
            "runs": runs,
            "rejections_by_cause":
                service.stats()["rejections_by_cause"],
            # a clean benchmark performed zero retries/degradations
            "resilience": events.counts(),
        }
    if output_path:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % output_path, file=stream)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="dlrm")
    parser.add_argument("--requests", type=int, default=12)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--rejects", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_verify.json")
    args = parser.parse_args(argv)
    report = run_bench(model=args.model, requests=args.requests,
                       max_batch=args.max_batch, rejects=args.rejects,
                       seed=args.seed, output_path=args.out)
    by_mode = {r["mode"]: r for r in report["runs"]}
    reject = by_mode["reject_checksum"]["throughput_rps"]
    accept = by_mode["single"]["throughput_rps"]
    if reject <= accept:
        # shedding garbage must be far cheaper than verifying proofs,
        # or rejection itself becomes the denial-of-service vector
        print("WARNING: rejecting (%.1f/s) is no faster than verifying "
              "(%.1f/s)" % (reject, accept), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
