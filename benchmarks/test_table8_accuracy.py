"""Table 8: accuracy of ZKML's arithmetization vs the FP32 model.

The paper measures trained MNIST/CIFAR-10 checkpoints; offline we train
numpy MLPs on procedurally generated substitutes (DESIGN.md §2) and
compare float accuracy against the exact fixed-point circuit semantics
(run_fixed is tested to match the circuit cell-for-cell).
"""

import numpy as np
import pytest
from conftest import print_table
from paper_data import TABLE8_ACCURACY

from repro.ml import MLPClassifier, synthetic_cifar, synthetic_digits
from repro.model import run_fixed

SCALE_BITS = 12


def fixed_accuracy(spec, images, labels, scale_bits=SCALE_BITS):
    hits = 0
    for img, label in zip(images, labels):
        out = run_fixed(spec, {"image": img}, scale_bits)
        logits = out[spec.outputs[0]].reshape(-1).astype(np.int64)
        hits += int(np.argmax(logits) == label)
    return hits / len(labels)


@pytest.fixture(scope="module")
def trained_models():
    digits_x, digits_y = synthetic_digits(600, seed=1)
    cifar_x, cifar_y = synthetic_cifar(600, seed=2)
    test_digits = synthetic_digits(120, seed=77)
    test_cifar = synthetic_cifar(120, seed=78)
    models = {
        "mnist": (MLPClassifier([64, 48, 10], seed=0)
                  .fit(digits_x, digits_y, epochs=50), (8, 8, 1),
                  test_digits),
        "vgg16": (MLPClassifier([300, 64, 10], seed=1)
                  .fit(cifar_x, cifar_y, epochs=50), (10, 10, 3),
                  test_cifar),
        "resnet18": (MLPClassifier([300, 48, 24, 10], seed=2)
                     .fit(cifar_x, cifar_y, epochs=50), (10, 10, 3),
                     test_cifar),
    }
    return models


def test_table8_quantization_accuracy(benchmark, trained_models):
    rows = []
    deltas = []
    for name, (clf, shape, (tx, ty)) in trained_models.items():
        spec = clf.to_model_spec("acc-" + name, shape)
        fp32 = clf.accuracy(tx, ty) * 100
        zk = fixed_accuracy(spec, tx, ty) * 100
        paper_fp32, paper_zk = TABLE8_ACCURACY[name]
        delta = zk - fp32
        deltas.append(delta)
        rows.append((
            name, "%.2f%%" % fp32, "%.2f%%" % zk, "%+.2f%%" % delta,
            "%+.2f%%" % (paper_zk - paper_fp32),
        ))
    print_table(
        "Table 8: FP32 vs ZKML fixed-point accuracy (synthetic data)",
        ("model (analogue)", "FP32 acc", "ZKML acc", "delta (ours)",
         "delta (paper)"),
        rows,
    )
    # the paper's claim: arithmetization costs at most ~0.01% accuracy;
    # on our smaller test sets one flipped sample is 0.83%, so the bound
    # is two samples
    for delta in deltas:
        assert abs(delta) <= 2 / 120 * 100 + 1e-9, "delta %.2f%% too large" % delta

    clf, shape, (tx, ty) = trained_models["mnist"]
    spec = clf.to_model_spec("acc-bench", shape)
    benchmark(lambda: run_fixed(spec, {"image": tx[0]}, SCALE_BITS))


def test_table8_accuracy_improves_with_precision(benchmark, trained_models):
    clf, shape, (tx, ty) = trained_models["mnist"]
    spec = clf.to_model_spec("acc-scale", shape)
    fp32 = clf.accuracy(tx, ty)
    coarse = fixed_accuracy(spec, tx[:60], ty[:60], scale_bits=4)
    fine = fixed_accuracy(spec, tx[:60], ty[:60], scale_bits=12)
    assert fine >= coarse
    assert abs(fine - clf.accuracy(tx[:60], ty[:60])) <= 0.05
    benchmark(lambda: clf.accuracy(tx[:20], ty[:20]))
